// Package tune searches the overlap-plan space automatically, per kernel
// and per machine model. The paper (§2) leaves the tile size K to the user
// and fixes the wait placement (§3.6) and interchange gate (§3.5) as
// heuristics; related work (Cui & Pericàs; Kumar et al.) shows overlap
// decisions are platform-sensitive and that an analytic cost model can seed
// a measured search cheaply. The tuner does exactly that over plan space:
// candidate tile sizes are seeded from the machine's LogGP-flavoured
// profile constants and CPU cost model (eager/rendezvous crossover,
// per-message setup amortization, and the sqrt-form pipeline optimum), then
// refined by a deterministic hill-climb of simulated runs; at the best K,
// the non-K knobs — wait schedule, send order, interchange gate — are
// flipped greedily, adopting only strictly better settings.
//
// The search is per site. A program with several MPI_ALLTOALL sites first
// gets the uniform search above (every site shares one decision — the best
// uniform plan is recorded as its own baseline), then coordinate descent
// across sites: each site's K and knobs are climbed with the other sites'
// decisions held fixed, iterating over the sites until a whole pass adopts
// nothing or the measurement budget runs out. Candidates are memoized by
// the whole plan's canonical key, so revisiting a decision vector — or
// reaching the same generated source through a knob no-op — costs nothing.
// Every measured candidate passes through the same Analyze → Apply → run
// pipeline as the harness and is checked against the bit-identical oracle;
// a candidate that corrupts results is never chosen, and the fixed-K
// default decision is always measured first so the tuned choice can never
// lose to the baseline.
package tune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/plan"
)

// DefaultMaxMeasured bounds measured candidates per (kernel, machine) for a
// single-site kernel. The knob stage needs headroom beyond the K climb, so
// the budget sits above the K-only tuner's historical 10.
const DefaultMaxMeasured = 14

// PerSiteExtraMeasured is the additional default budget granted for every
// MPI_ALLTOALL site beyond the first: the coordinate-descent stage needs
// its own headroom to move each site off the uniform incumbent.
const PerSiteExtraMeasured = 10

// maxDescentPasses bounds the coordinate-descent sweeps over the sites; the
// descent stops earlier at the first pass that adopts nothing.
const maxDescentPasses = 4

// ResolveMaxMeasured resolves a requested measured-candidate budget for a
// search over the given number of transformable sites: a non-positive
// request selects DefaultMaxMeasured plus PerSiteExtraMeasured per site
// beyond the first. Exported so a caller that needs the exact MemoKey of a
// query it did not run itself (the plan server memoizing a fleet-dispatched
// search) resolves the budget identically to Tune.
func ResolveMaxMeasured(requested, sites int) int {
	if requested > 0 {
		return requested
	}
	if sites < 1 {
		sites = 1
	}
	return DefaultMaxMeasured + PerSiteExtraMeasured*(sites-1)
}

// Input is the kernel to tune.
type Input struct {
	Source string // untransformed Fortran source
	// Program optionally reuses an already-analyzed core.Program for the
	// same source (sharing its analysis and plan-key memo, so variants the
	// caller already generated are not re-transformed); nil re-analyzes
	// Source.
	Program  *core.Program
	NP       int   // rank count
	FixedK   int64 // the fixed tile size used as the search baseline
	Machines []plan.Machine
}

// Options configures the search.
type Options struct {
	// MaxMeasured caps simulated pre-push runs per machine (seeds plus
	// refinement and knob flips); <= 0 selects DefaultMaxMeasured plus
	// PerSiteExtraMeasured per site beyond the first.
	MaxMeasured int
	// Arrays names the observable arrays the oracle compares (besides all
	// printed output); empty means {"ar"}.
	Arrays []string
	// KOnly restricts the search to tile sizes (uniform and per-site),
	// skipping the non-K knob flips — kept for ablation comparisons.
	KOnly bool
	// Engine selects the execution engine for every measured run; ""
	// means exec.Default (the bytecode engine, whose variant store makes
	// revisiting a candidate across machines nearly free).
	Engine exec.Engine
	// CheckEngine, when non-empty and different from Engine, re-runs just
	// the original program and the adopted plan on this engine after the
	// search and requires bit-identical makespans and observables — the
	// tiered-tuning contract: candidates are measured on the fast tier,
	// the winner stays oracle-backed. "" disables the re-check.
	CheckEngine exec.Engine
	// Store backs the compile engine's variant cache for measured runs;
	// nil selects the process-default store.
	Store exec.VariantStore
	// Memo, when non-nil, short-circuits the search for (fingerprint,
	// machine) pairs tuned before and records fresh outcomes. The caller
	// owns the aliasing assumption: programs that share an analysis
	// fingerprint are handed each other's plans.
	Memo *Memo
}

// Candidate is one evaluated whole-plan decision vector under one machine.
// Decisions is aligned with Choice.Sites (one decision per transformable
// site, in program order); Uniform marks vectors whose sites all share one
// decision.
type Candidate struct {
	Decisions []plan.Decision `json:"decisions"`
	Uniform   bool            `json:"uniform"`
	PrepushNs int64           `json:"prepush_ns"`
	Speedup   float64         `json:"speedup"`
	Identical bool            `json:"identical"`
	Seeded    bool            `json:"seeded"` // proposed by the analytic model
}

// SiteChoice is the tuning outcome for one MPI_ALLTOALL site: the chosen
// decision plus the analytic facts that seeded its search.
type SiteChoice struct {
	Site     string        `json:"site"`
	Decision plan.Decision `json:"decision"`
	// SeedKs are the tile sizes the machine's analytic model proposed for
	// this site (before measurement).
	SeedKs        []int64 `json:"seed_ks,omitempty"`
	PartitionSize int64   `json:"partition_size,omitempty"`
	TripCount     int64   `json:"trip_count,omitempty"`
}

// Choice is the tuning outcome for one (kernel, machine) pair.
type Choice struct {
	Machine string `json:"machine"`
	Offload bool   `json:"offload"`
	// Chosen is the first site's decision — the whole plan for the
	// single-site kernels that dominate the corpus; multi-site plans are in
	// Plan/Sites.
	Chosen plan.Decision `json:"chosen"`
	// Plan is the full chosen plan, one decision per site, replayable with
	// core.Apply (or compuniformer -apply-plan).
	Plan *plan.Plan `json:"plan"`
	// Sites carries the per-site decisions and analytic seeds, in program
	// order.
	Sites []SiteChoice `json:"sites"`
	// Divergent marks a chosen plan whose sites do not all share one
	// decision — the win a uniform tuner cannot express.
	Divergent bool `json:"divergent"`
	// UniformSpeedup is the best measured speedup among uniform candidates
	// (every site sharing one decision) — the baseline the per-site descent
	// must beat for Divergent to matter.
	UniformSpeedup float64     `json:"best_uniform_speedup"`
	Speedup        float64     `json:"tuned_speedup"`
	PrepushNs      int64       `json:"tuned_prepush_ns"`
	OriginalNs     int64       `json:"original_ns"`
	FixedK         int64       `json:"fixed_k"`
	FixedSpeedup   float64     `json:"fixed_speedup"`
	Evaluations    int         `json:"evaluations"`   // measured pre-push runs
	SearchSimNs    int64       `json:"search_sim_ns"` // simulated time spent searching
	Candidates     []Candidate `json:"candidates"`
	// MemoHit marks a choice served from the plan memo: no search ran for
	// this query; the recorded measurements are the original search's.
	MemoHit bool `json:"memo_hit,omitempty"`
	// TieredChecks counts the check-engine runs this choice was verified
	// with (0 when tiered checking was off or the choice came from the
	// memo).
	TieredChecks int `json:"tiered_checks,omitempty"`
}

// siteState is one transformable site's search facts.
type siteState struct {
	key    string
	geo    geom
	ladder []int64
}

// Tune searches plan space for the kernel under every machine. The search
// is fully deterministic: the same input and options always produce the
// same choices (candidates are visited in sorted order, ties prefer the
// default knobs and then the smaller K). Transformed variants are shared
// across machines through core.Apply's plan-key memo, so a candidate plan
// is generated at most once per kernel.
func Tune(in Input, opts Options) ([]Choice, error) {
	arrays := opts.Arrays
	if len(arrays) == 0 {
		arrays = []string{"ar"}
	}
	engine, err := exec.ParseEngine(string(opts.Engine))
	if err != nil {
		return nil, fmt.Errorf("tune: %v", err)
	}
	var check *exec.Runner
	if opts.CheckEngine != "" {
		checkEngine, err := exec.ParseEngine(string(opts.CheckEngine))
		if err != nil {
			return nil, fmt.Errorf("tune: check engine: %v", err)
		}
		if checkEngine != engine {
			check = &exec.Runner{Engine: checkEngine, Store: opts.Store}
		}
	}

	prog := in.Program
	if prog == nil {
		var err error
		prog, err = core.Analyze(in.Source, core.AnalyzeOptions{})
		if err != nil {
			return nil, fmt.Errorf("tune: parse: %w", err)
		}
	}
	if in.Source == "" {
		in.Source = prog.Source()
	}
	sites := siteStates(prog)
	if len(sites) == 0 {
		return nil, fmt.Errorf("tune: transform does not fire on this kernel: %s", firstReason(prog))
	}
	maxM := ResolveMaxMeasured(opts.MaxMeasured, len(sites))
	// Uniform ladder: the union of every site's rungs. A rung one site
	// rejects at evaluation time is skipped without costing a measurement.
	var uniformLadder []int64
	for _, st := range sites {
		uniformLadder = mergeLadders(uniformLadder, st.ladder)
	}

	runner := exec.Runner{Engine: engine, Store: opts.Store}

	var choices []Choice
	for _, m := range in.Machines {
		var memoKey string
		if opts.Memo != nil {
			memoKey = MemoKey(core.Fingerprint(prog, m.Name), in, maxM, opts.KOnly, arrays)
			if ch, ok := opts.Memo.Lookup(memoKey); ok {
				ch.MemoHit = true
				choices = append(choices, ch)
				continue
			}
		}
		ch, err := tuneMachine(prog, in, m, sites, uniformLadder, arrays, maxM, opts.KOnly, runner, check)
		if err != nil {
			return nil, err
		}
		if opts.Memo != nil {
			opts.Memo.Store(memoKey, ch)
		}
		choices = append(choices, ch)
	}
	return choices, nil
}

// geom carries the kernel facts the analytic seeding needs.
type geom struct {
	psz          int64 // partition size in last-dimension units
	trip         int64 // tiled-loop trip count (0 when unknown)
	perIterBytes int64 // bytes of one point-to-point message per tiled iteration
}

// siteStates harvests every transformable site's facts from the analysis,
// in program order. The candidate ladder per site: divisors of the
// partition size (the legality constraint of the subset-send and indirect
// schedules) unioned with divisors of the tiled-loop trip count (the
// natural rungs when the tiled loop is not the partitioned dimension).
func siteStates(prog *core.Program) []siteState {
	var out []siteState
	for i := range prog.Sites {
		s := &prog.Sites[i]
		if !s.Transformable {
			continue
		}
		g := geom{psz: s.PartitionSize, trip: s.TripCount, perIterBytes: s.PerIterBytes}
		out = append(out, siteState{
			key:    s.Key(),
			geo:    g,
			ladder: mergeLadders(divisors(g.psz), divisors(g.trip)),
		})
	}
	return out
}

func firstReason(prog *core.Program) string {
	for _, s := range prog.Sites {
		if !s.Transformable {
			return s.Reason
		}
	}
	return "no MPI_ALLTOALL site found"
}

// search carries the per-machine evaluation state.
type search struct {
	prog    *core.Program
	in      Input
	machine plan.Machine
	sites   []siteState
	arrays  []string
	maxM    int
	runner  exec.Runner

	orig   *interp.Result
	origNs int64

	measured map[string]*Candidate // by whole-plan key; nil = rejected/failed
	bySrc    map[string]*Candidate // by generated source: knob no-ops alias
	order    [][]plan.Decision     // unique measured decision vectors, visit order
	runs     int
}

// tuneMachine runs the seeded, measured search for one machine: the uniform
// stage first (all sites share one decision — the historical single-site
// search, and the best-uniform baseline), then coordinate descent across
// the sites.
func tuneMachine(prog *core.Program, in Input, m plan.Machine, sites []siteState,
	uniformLadder []int64, arrays []string, maxM int, kOnly bool, runner exec.Runner,
	check *exec.Runner) (Choice, error) {

	orig, err := simulate(in.Source, in.NP, m, runner)
	if err != nil {
		return Choice{}, fmt.Errorf("tune: original run under %s: %w", m.Name, err)
	}
	s := &search{
		prog: prog, in: in, machine: m, sites: sites, arrays: arrays, maxM: maxM,
		runner: runner,
		orig:   orig, origNs: int64(orig.Elapsed()),
		measured: map[string]*Candidate{}, bySrc: map[string]*Candidate{},
	}

	ch := Choice{
		Machine: m.Name, Offload: m.Profile.Offload,
		OriginalNs: s.origNs, FixedK: in.FixedK,
	}

	// The identity plan — skip every site — is candidate zero. It costs no
	// measurement (the original run is already in hand), anchors the search
	// at speedup exactly 1.0, and makes "tuned never loses to the original"
	// true by construction: best() prefers the earliest candidate on ties,
	// so a transformed plan is chosen only when it strictly beats identity.
	// Registering the original source in bySrc also lets any mixed-skip
	// vector whose generated code collapses to the original alias for free.
	s.registerIdentity()

	// The fixed-K default decision is measured next so the tuned choice can
	// also never lose to the fixed-K baseline, then the analytic seeds.
	fixed := plan.Decision{K: in.FixedK}.Normalize()
	fds := uniformVecOf(fixed, len(sites))
	if s.evaluate(fds, true) == nil {
		// Fatal only when there is nothing to tune; a simulation failure at
		// the fixed K still lets the seeds find a plan (Apply is memoized,
		// so the re-check is free).
		if _, rep, err := core.Apply(s.prog, s.buildPlan(fds)); err != nil || rep.TransformedCount() < len(sites) {
			return Choice{}, fmt.Errorf("tune: transform did not fire on all %d site(s) at fixed K=%d under %s",
				len(sites), in.FixedK, m.Name)
		}
	}
	// Per-site analytic seeds, snapped onto each site's own ladder; the
	// uniform stage proposes their union applied to every site at once.
	siteSeeds := make([][]int64, len(sites))
	seedSet := map[int64]bool{}
	for i, st := range sites {
		siteSeeds[i] = seedKs(m, &st.geo, in.FixedK, st.ladder)
		for _, k := range siteSeeds[i] {
			seedSet[k] = true
		}
	}
	for _, k := range sortedKeys(seedSet) {
		s.evaluate(withK(fds, -1, k), true)
	}
	// Refinement: hill-climb the divisor ladder from the best decision so
	// far until no neighbor improves or the measurement budget runs out.
	s.climbK(-1, uniformLadder)
	if !kOnly {
		// Knob stage: each non-K knob flip gets its own K-climb, because a
		// flip can be a no-op at the incumbent K (the interchange gate, for
		// one, only disagrees with "auto" on part of the ladder) — such
		// no-op rungs alias earlier candidates and cost nothing, so the
		// climb walks through them for free until the flip starts mattering.
		// A flipped plan displaces the incumbent only when strictly better;
		// afterwards one more default climb refines K under the winner.
		s.climbKnobs(-1, uniformLadder)
		s.climbK(-1, uniformLadder)
	}

	// Coordinate descent across sites: climb each site's K (and knobs) with
	// the others held at the incumbent, iterating until a whole pass adopts
	// nothing. Single-site kernels are already done — their per-site moves
	// would all alias the uniform stage.
	if len(sites) > 1 {
		for pass := 0; pass < maxDescentPasses && s.runs < s.maxM; pass++ {
			before := ""
			if b := s.best(); b != nil {
				before = s.vecKey(b.Decisions)
			}
			for si := range sites {
				if pass == 0 {
					if b := s.best(); b != nil {
						for _, k := range siteSeeds[si] {
							s.evaluate(withK(b.Decisions, si, k), true)
						}
					}
				}
				s.climbK(si, sites[si].ladder)
				if !kOnly {
					s.climbKnobs(si, sites[si].ladder)
				}
			}
			after := ""
			if b := s.best(); b != nil {
				after = s.vecKey(b.Decisions)
			}
			if after == before {
				break
			}
		}
	}

	winner := s.best()
	if winner == nil {
		return Choice{}, fmt.Errorf("tune: no valid plan found under %s (fixed K=%d)", m.Name, in.FixedK)
	}
	ch.Chosen = winner.Decisions[0]
	ch.Plan = s.buildPlan(winner.Decisions)
	ch.Plan.Machine = m.Name
	ch.Divergent = !winner.Uniform
	ch.Speedup = winner.Speedup
	ch.PrepushNs = winner.PrepushNs
	for i, st := range sites {
		ch.Sites = append(ch.Sites, SiteChoice{
			Site: st.key, Decision: winner.Decisions[i], SeedKs: siteSeeds[i],
			PartitionSize: st.geo.psz, TripCount: st.geo.trip,
		})
	}
	if f := s.measured[s.vecKey(fds)]; f != nil {
		ch.FixedSpeedup = f.Speedup
	}
	// Evaluations reports the budget actually consumed (a run whose
	// simulation failed still spent a slot); SearchSimNs sums the
	// successful runs' simulated makespans.
	ch.Evaluations = s.runs
	for _, ds := range s.order {
		c := s.measured[s.vecKey(ds)]
		if c == nil {
			continue
		}
		ch.Candidates = append(ch.Candidates, *c)
		ch.SearchSimNs += c.PrepushNs
		if c.Identical && c.Uniform && c.Speedup > ch.UniformSpeedup {
			ch.UniformSpeedup = c.Speedup
		}
	}

	// Tiered check: the candidates above were measured on the fast tier;
	// re-run only the original and the adopted plan on the check engine
	// (the walk oracle in CI) and require exact agreement — same makespans
	// the search ranked on, same observables the never-lose gate compared.
	if check != nil {
		co, err := simulate(in.Source, in.NP, m, *check)
		if err != nil {
			return Choice{}, fmt.Errorf("tune: tiered check: original under %s on %q: %w", m.Name, check.Engine, err)
		}
		ch.TieredChecks++
		if int64(co.Elapsed()) != s.origNs {
			return Choice{}, fmt.Errorf("tune: tiered check: original makespan %d ns on %q vs %d ns on %q under %s",
				int64(co.Elapsed()), check.Engine, s.origNs, runner.Engine, m.Name)
		}
		if same, why := interp.SameObservable(s.orig, co, arrays...); !same {
			return Choice{}, fmt.Errorf("tune: tiered check: original observables diverge between %q and %q under %s: %s",
				runner.Engine, check.Engine, m.Name, why)
		}
		// core.Apply is memoized by plan key: re-materializing the winner's
		// source is free.
		winnerSrc, _, err := core.Apply(prog, ch.Plan)
		if err != nil {
			return Choice{}, fmt.Errorf("tune: tiered check: re-apply winner under %s: %w", m.Name, err)
		}
		if winnerSrc != in.Source {
			cw, err := simulate(winnerSrc, in.NP, m, *check)
			if err != nil {
				return Choice{}, fmt.Errorf("tune: tiered check: winner under %s on %q: %w", m.Name, check.Engine, err)
			}
			ch.TieredChecks++
			if int64(cw.Elapsed()) != winner.PrepushNs {
				return Choice{}, fmt.Errorf("tune: tiered check: winner makespan %d ns on %q vs %d ns on %q under %s",
					int64(cw.Elapsed()), check.Engine, winner.PrepushNs, runner.Engine, m.Name)
			}
			if same, why := interp.SameObservable(co, cw, arrays...); !same {
				return Choice{}, fmt.Errorf("tune: tiered check: winner corrupts observables on %q under %s: %s",
					check.Engine, m.Name, why)
			}
		}
	}
	return ch, nil
}

// registerIdentity records the skip-every-site vector as a measured
// candidate without spending a run: its makespan is the original's by
// definition (core.Apply returns the original bytes for a skip-all plan),
// its speedup exactly 1.0, and the oracle trivially passes.
func (s *search) registerIdentity() {
	ds := normVec(uniformVecOf(plan.Identity(), len(s.sites)))
	c := &Candidate{
		Decisions: ds, Uniform: true,
		PrepushNs: s.origNs, Speedup: 1.0, Identical: true, Seeded: true,
	}
	s.measured[s.vecKey(ds)] = c
	s.bySrc[s.in.Source] = c
	s.order = append(s.order, ds)
}

// skipCount returns how many sites of the vector decline transformation.
func skipCount(ds []plan.Decision) int {
	n := 0
	for _, d := range ds {
		if d.Skip {
			n++
		}
	}
	return n
}

// buildPlan materializes a decision vector as a site-keyed plan (sites in
// program order; the first site's decision doubles as the default).
func (s *search) buildPlan(ds []plan.Decision) *plan.Plan {
	p := &plan.Plan{Schema: plan.Schema, Default: ds[0]}
	for i, st := range s.sites {
		p.Set(st.key, ds[i])
	}
	return p
}

// vecKey canonicalizes a decision vector for memo keys.
func (s *search) vecKey(ds []plan.Decision) string { return s.buildPlan(ds).Key() }

// normVec normalizes every decision of a vector.
func normVec(ds []plan.Decision) []plan.Decision {
	out := make([]plan.Decision, len(ds))
	for i, d := range ds {
		out[i] = d.Normalize()
	}
	return out
}

// uniformVecOf repeats one decision across n sites.
func uniformVecOf(d plan.Decision, n int) []plan.Decision {
	out := make([]plan.Decision, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// isUniform reports whether every site shares one decision.
func isUniform(ds []plan.Decision) bool {
	for i := 1; i < len(ds); i++ {
		if ds[i] != ds[0] {
			return false
		}
	}
	return true
}

// withK returns a copy of the vector with site si's tile size set to k;
// si < 0 sets every site (the uniform axis).
func withK(ds []plan.Decision, si int, k int64) []plan.Decision {
	out := append([]plan.Decision(nil), ds...)
	if si < 0 {
		for i := range out {
			out[i].K = k
		}
		return out
	}
	out[si].K = k
	return out
}

// withFlip returns a copy of the vector with the knob flip applied to site
// si (si < 0 flips every site).
func withFlip(ds []plan.Decision, si int, flip func(*plan.Decision)) []plan.Decision {
	out := append([]plan.Decision(nil), ds...)
	if si < 0 {
		for i := range out {
			flip(&out[i])
			out[i] = out[i].Normalize()
		}
		return out
	}
	flip(&out[si])
	out[si] = out[si].Normalize()
	return out
}

// axisOf maps a site axis onto the vector index carrying its K (< 0, the
// uniform axis, reads site 0 — all sites agree there by construction).
func axisOf(si int) int {
	if si < 0 {
		return 0
	}
	return si
}

// evaluate runs the pre-push variant under the decision vector and applies
// the oracle. A vector the transformation rejects on any site yields no
// candidate and costs nothing against the measurement budget; a vector
// whose generated source is identical to an already-measured one aliases
// that measurement for free (knob flips that change nothing — e.g. forcing
// interchange off where it never fired — collapse onto the earlier
// candidate).
func (s *search) evaluate(ds []plan.Decision, seeded bool) *Candidate {
	ds = normVec(ds)
	key := s.vecKey(ds)
	if c, ok := s.measured[key]; ok {
		return c
	}
	src, rep, err := core.Apply(s.prog, s.buildPlan(ds))
	if err != nil || rep.TransformedCount() < len(s.sites)-skipCount(ds) {
		// A plan leaving any non-skipped site untransformed is not a
		// candidate: the comparison must hold the set of rewritten sites to
		// exactly what the plan asked for. Deliberately skipped sites are
		// fine — their identity is the decision.
		s.measured[key] = nil
		return nil
	}
	if c, ok := s.bySrc[src]; ok {
		s.measured[key] = c
		return c
	}
	if s.runs >= s.maxM {
		return nil
	}
	s.runs++
	res, err := simulate(src, s.in.NP, s.machine, s.runner)
	if err != nil {
		s.measured[key] = nil
		return nil
	}
	c := &Candidate{Decisions: ds, Uniform: isUniform(ds), PrepushNs: int64(res.Elapsed()), Seeded: seeded}
	if c.PrepushNs > 0 {
		c.Speedup = float64(s.origNs) / float64(c.PrepushNs)
	}
	same, _ := interp.SameObservable(s.orig, res, s.arrays...)
	c.Identical = same
	s.measured[key] = c
	s.bySrc[src] = c
	s.order = append(s.order, ds)
	return c
}

// climbK hill-climbs the ladder around the best decision vector, varying
// only axis si's K (the other sites and knobs ride along from the
// incumbent).
func (s *search) climbK(si int, ladder []int64) {
	for {
		best := s.best()
		if best == nil {
			break
		}
		curK := best.Decisions[axisOf(si)].K
		// Neighbor rungs: for an on-ladder best, the rungs either side; for
		// an off-ladder best (a fixed K dividing neither the partition size
		// nor the trip count), the rungs bracketing it.
		i := sort.Search(len(ladder), func(j int) bool { return ladder[j] >= curK })
		neighbors := []int{i - 1, i}
		if i < len(ladder) && ladder[i] == curK {
			neighbors = []int{i - 1, i + 1}
		}
		improved := false
		for _, j := range neighbors {
			if j < 0 || j >= len(ladder) {
				continue
			}
			ds := withK(best.Decisions, si, ladder[j])
			if _, seen := s.measured[s.vecKey(ds)]; seen {
				continue
			}
			if c := s.evaluate(ds, false); c != nil && c.Identical && c.Speedup > best.Speedup {
				improved = true
			}
		}
		if !improved || s.runs >= s.maxM {
			break
		}
	}
}

// climbKnobs explores each non-K knob flip of the incumbent on axis si in a
// fixed order. Every flip is evaluated at the incumbent K and then
// hill-climbed along the ladder within its own variant: a flip whose code
// is identical at the incumbent K (an aliased no-op) is walked outward for
// free until the rungs where it changes the schedule. The interchange
// flips lead — the fixed granularity gate is the most platform-sensitive
// heuristic.
func (s *search) climbKnobs(si int, ladder []int64) {
	flips := []func(*plan.Decision){
		// "Don't" leads: declining the transformation outright is the most
		// consequential move on already-overlapped machines, where every
		// transformed variant loses. Toggling skip off a skipped incumbent
		// re-enters the transformed space at the default knobs.
		func(d *plan.Decision) { d.Skip = !d.Skip },
		func(d *plan.Decision) { d.Interchange = plan.InterchangeOff },
		func(d *plan.Decision) { d.Interchange = plan.InterchangeOn },
		func(d *plan.Decision) { d.Wait = flipWait(d.Wait) },
		func(d *plan.Decision) { d.SendOrder = flipOrder(d.SendOrder) },
	}
	for _, flip := range flips {
		best := s.best()
		if best == nil || s.runs >= s.maxM {
			break
		}
		ds := withFlip(best.Decisions, si, flip)
		if s.vecKey(ds) == s.vecKey(best.Decisions) {
			continue
		}
		s.climbVariant(ds, si, ladder)
	}
}

// climbVariant walks axis si's K outward along the ladder in both
// directions from the variant's starting rung, with everything else held
// fixed. A rung where the flip is a codegen no-op aliases an earlier
// candidate (equal speedup, zero cost against the budget) and the walk
// continues through it — that is how the climb crosses the region where,
// say, the interchange gate's own verdict coincides with the forced knob —
// as does a rung the transform rejects (also free). A direction stops at
// the first genuinely measured rung that fails to improve the variant's
// local best, or when the budget runs out. The global best picks up any
// strictly better candidate through the shared measurement pool.
func (s *search) climbVariant(ds []plan.Decision, si int, ladder []int64) {
	cur := s.evaluate(ds, false)
	if cur == nil || !cur.Identical {
		return
	}
	curSp := cur.Speedup
	k := ds[axisOf(si)].K
	i := sort.Search(len(ladder), func(j int) bool { return ladder[j] >= k })
	starts := [2]int{i - 1, i + 1}
	if i >= len(ladder) || ladder[i] != k {
		starts = [2]int{i - 1, i} // off-ladder start: bracket it
	}
	for dir, j := range starts {
		step := 1
		if dir == 0 {
			step = -1
		}
		for ; j >= 0 && j < len(ladder); j += step {
			if s.runs >= s.maxM {
				return
			}
			nd := withK(ds, si, ladder[j])
			c := s.evaluate(nd, false)
			if c == nil {
				continue // rejected or failed rung: free, keep walking
			}
			if !c.Identical {
				break
			}
			aliased := s.vecKey(c.Decisions) != s.vecKey(nd)
			if c.Speedup > curSp {
				curSp = c.Speedup
			} else if !aliased {
				break
			}
		}
	}
}

func flipWait(w plan.WaitSchedule) plan.WaitSchedule {
	if w == plan.WaitPerTile {
		return plan.WaitDeferred
	}
	return plan.WaitPerTile
}

func flipOrder(o plan.SendOrder) plan.SendOrder {
	if o == plan.SendSequential {
		return plan.SendStaggered
	}
	return plan.SendSequential
}

// best returns the oracle-identical candidate with the highest speedup.
// Ties prefer the candidate measured earliest — the fixed-K default-knob
// decision first, then seeds, then refinements — so a knob flip, retile,
// or per-site divergence displaces the incumbent only when strictly
// better.
func (s *search) best() *Candidate {
	var best *Candidate
	for _, ds := range s.order {
		c := s.measured[s.vecKey(ds)]
		if c == nil || !c.Identical {
			continue
		}
		if best == nil || c.Speedup > best.Speedup {
			best = c
		}
	}
	return best
}

// simulate runs one variant on the virtual cluster under the machine's CPU
// cost model and network profile, through the selected execution engine
// and its variant store.
func simulate(src string, np int, m plan.Machine, runner exec.Runner) (*interp.Result, error) {
	return runner.Run(src, np, m.Costs, m.Profile)
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// seedKs proposes candidate tile sizes from the machine's analytic cost
// model, snapped onto the divisor ladder (every rung is legal for every
// pattern). Seeds, in model terms:
//
//   - the eager/rendezvous crossover: the largest K whose per-tile message
//     stays under the profile's eager threshold, and the next rung above it
//     (the protocol switch is the sharpest discontinuity in transfer cost);
//   - setup amortization: the smallest K whose wire time covers ~4× the
//     per-message setup (send overhead + latency), below which overheads
//     dominate;
//   - the pipeline optimum K* = sqrt(trip · setup / (G · bytesPerIter)),
//     balancing the per-tile setup against the exposed drain of the last
//     tile (the classic two-term pipelining tradeoff);
//   - the compute-balance rung: the tile whose computation hides one
//     message's setup+latency (finer tiles stall the pipeline);
//   - the fixed K (so the tuned result can never lose to the baseline) and
//     the full partition (one tile per owner, the coarsest useful point).
func seedKs(m plan.Machine, geo *geom, fixedK int64, ladder []int64) []int64 {
	prof, costs := m.Profile, m.Costs
	set := map[int64]bool{}
	snap := func(k int64) {
		if k < 1 {
			k = 1
		}
		lo, hi := snapToLadder(ladder, k)
		set[lo] = true
		set[hi] = true
	}
	set[fixedK] = true
	if len(ladder) > 0 {
		set[ladder[len(ladder)-1]] = true // whole partition
	}
	b := geo.perIterBytes
	if b > 0 {
		snap(prof.EagerThreshold / b)
		setup := float64(prof.OSend) + float64(prof.Latency)
		if prof.GapNsPerByte > 0 {
			snap(int64(4 * setup / (prof.GapNsPerByte * float64(b))))
			if geo.trip > 0 {
				snap(int64(math.Sqrt(float64(geo.trip) * setup / (prof.GapNsPerByte * float64(b)))))
			}
		}
		perIterCompute := float64(costs.Store+costs.LoopIter+2*costs.Op) * float64(b) / 4
		if perIterCompute > 0 {
			snap(int64(setup / perIterCompute))
		}
	}
	return sortedKeys(set)
}

// divisors returns all divisors of n in ascending order (nil when n < 1).
func divisors(n int64) []int64 {
	var out []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if d != n/d {
				out = append(out, n/d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeLadders unions two sorted rung lists into one sorted, deduplicated
// ladder.
func mergeLadders(a, b []int64) []int64 {
	set := map[int64]bool{}
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		set[k] = true
	}
	return sortedKeys(set)
}

// snapToLadder returns the nearest rungs at or below and at or above k
// (clamped to the ladder ends).
func snapToLadder(ladder []int64, k int64) (int64, int64) {
	if len(ladder) == 0 {
		return k, k
	}
	i := sort.Search(len(ladder), func(i int) bool { return ladder[i] >= k })
	hi := i
	if hi == len(ladder) {
		hi = len(ladder) - 1
	}
	lo := i
	if lo > 0 && (lo == len(ladder) || ladder[lo] != k) {
		lo--
	}
	return ladder[lo], ladder[hi]
}
