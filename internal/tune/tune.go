// Package tune searches the overlap-plan space automatically, per kernel
// and per machine model. The paper (§2) leaves the tile size K to the user
// and fixes the wait placement (§3.6) and interchange gate (§3.5) as
// heuristics; related work (Cui & Pericàs; Kumar et al.) shows overlap
// decisions are platform-sensitive and that an analytic cost model can seed
// a measured search cheaply. The tuner does exactly that over plan.Decision
// space: candidate tile sizes are seeded from the machine's LogGP-flavoured
// profile constants and CPU cost model (eager/rendezvous crossover,
// per-message setup amortization, and the sqrt-form pipeline optimum), then
// refined by a deterministic hill-climb of simulated runs; at the best K,
// the non-K knobs — wait schedule, send order, interchange gate — are
// flipped greedily, adopting only strictly better settings. Every measured
// candidate passes through the same Analyze → Apply → run pipeline as the
// harness and is checked against the bit-identical oracle; a candidate that
// corrupts results is never chosen, and the fixed-K default decision is
// always measured first so the tuned choice can never lose to the baseline.
package tune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/plan"
)

// DefaultMaxMeasured bounds measured candidates per (kernel, machine). The
// knob stage needs headroom beyond the K climb, so the budget sits above
// the K-only tuner's historical 10.
const DefaultMaxMeasured = 14

// Input is the kernel to tune.
type Input struct {
	Source string // untransformed Fortran source
	// Program optionally reuses an already-analyzed core.Program for the
	// same source (sharing its analysis and plan-key memo, so variants the
	// caller already generated are not re-transformed); nil re-analyzes
	// Source.
	Program  *core.Program
	NP       int   // rank count
	FixedK   int64 // the fixed tile size used as the search baseline
	Machines []plan.Machine
}

// Options configures the search.
type Options struct {
	// MaxMeasured caps simulated pre-push runs per machine (seeds plus
	// refinement and knob flips); <= 0 selects DefaultMaxMeasured.
	MaxMeasured int
	// Arrays names the observable arrays the oracle compares (besides all
	// printed output); empty means {"ar"}.
	Arrays []string
	// KOnly restricts the search to the tile size, skipping the non-K knob
	// stage — the historical behavior, kept for ablation comparisons.
	KOnly bool
}

// Candidate is one evaluated plan decision under one machine.
type Candidate struct {
	Decision  plan.Decision `json:"decision"`
	PrepushNs int64         `json:"prepush_ns"`
	Speedup   float64       `json:"speedup"`
	Identical bool          `json:"identical"`
	Seeded    bool          `json:"seeded"` // proposed by the analytic model
}

// Choice is the tuning outcome for one (kernel, machine) pair.
type Choice struct {
	Machine      string        `json:"machine"`
	Offload      bool          `json:"offload"`
	Chosen       plan.Decision `json:"chosen"`
	Speedup      float64       `json:"tuned_speedup"`
	PrepushNs    int64         `json:"tuned_prepush_ns"`
	OriginalNs   int64         `json:"original_ns"`
	FixedK       int64         `json:"fixed_k"`
	FixedSpeedup float64       `json:"fixed_speedup"`
	Evaluations  int           `json:"evaluations"`   // measured pre-push runs
	SearchSimNs  int64         `json:"search_sim_ns"` // simulated time spent searching
	Candidates   []Candidate   `json:"candidates"`
}

// Tune searches plan space for the kernel under every machine. The search
// is fully deterministic: the same input and options always produce the
// same choices (candidates are visited in sorted order, ties prefer the
// default knobs and then the smaller K). Transformed variants are shared
// across machines through core.Apply's plan-key memo, so a candidate plan
// is generated at most once per kernel.
func Tune(in Input, opts Options) ([]Choice, error) {
	arrays := opts.Arrays
	if len(arrays) == 0 {
		arrays = []string{"ar"}
	}
	maxM := opts.MaxMeasured
	if maxM <= 0 {
		maxM = DefaultMaxMeasured
	}

	prog := in.Program
	if prog == nil {
		var err error
		prog, err = core.Analyze(in.Source, core.AnalyzeOptions{})
		if err != nil {
			return nil, fmt.Errorf("tune: parse: %w", err)
		}
	}
	if in.Source == "" {
		in.Source = prog.Source()
	}
	geo := geometry(prog)
	if geo == nil {
		return nil, fmt.Errorf("tune: transform does not fire on this kernel: %s", firstReason(prog))
	}
	// Candidate ladder: divisors of the partition size (the legality
	// constraint of the subset-send and indirect schedules) unioned with
	// divisors of the tiled-loop trip count (the natural rungs when the
	// tiled loop is not the partitioned dimension). A rung the transform
	// rejects at evaluation time is skipped without costing a measurement.
	ladder := mergeLadders(divisors(geo.psz), divisors(geo.trip))

	var choices []Choice
	for _, m := range in.Machines {
		ch, err := tuneMachine(prog, in, m, geo, ladder, arrays, maxM, opts.KOnly)
		if err != nil {
			return nil, err
		}
		choices = append(choices, ch)
	}
	return choices, nil
}

// geom carries the kernel facts the analytic seeding needs.
type geom struct {
	psz          int64 // partition size in last-dimension units
	trip         int64 // tiled-loop trip count (0 when unknown)
	perIterBytes int64 // bytes of one point-to-point message per tiled iteration
}

// geometry harvests the first transformable site's facts from the analysis.
func geometry(prog *core.Program) *geom {
	for i := range prog.Sites {
		s := &prog.Sites[i]
		if !s.Transformable {
			continue
		}
		return &geom{psz: s.PartitionSize, trip: s.TripCount, perIterBytes: s.PerIterBytes}
	}
	return nil
}

func firstReason(prog *core.Program) string {
	for _, s := range prog.Sites {
		if !s.Transformable {
			return s.Reason
		}
	}
	return "no MPI_ALLTOALL site found"
}

// search carries the per-machine evaluation state.
type search struct {
	prog    *core.Program
	in      Input
	machine plan.Machine
	arrays  []string
	maxM    int

	orig   *interp.Result
	origNs int64

	measured map[string]*Candidate // by decision key; nil = rejected/failed
	bySrc    map[string]*Candidate // by generated source: knob no-ops alias
	order    []plan.Decision       // unique measured decisions, visit order
	runs     int
}

// tuneMachine runs the seeded, measured search for one machine.
func tuneMachine(prog *core.Program, in Input, m plan.Machine, geo *geom,
	ladder []int64, arrays []string, maxM int, kOnly bool) (Choice, error) {

	orig, err := simulate(in.Source, in.NP, m)
	if err != nil {
		return Choice{}, fmt.Errorf("tune: original run under %s: %w", m.Name, err)
	}
	s := &search{
		prog: prog, in: in, machine: m, arrays: arrays, maxM: maxM,
		orig: orig, origNs: int64(orig.Elapsed()),
		measured: map[string]*Candidate{}, bySrc: map[string]*Candidate{},
	}

	ch := Choice{
		Machine: m.Name, Offload: m.Profile.Offload,
		OriginalNs: s.origNs, FixedK: in.FixedK,
	}

	// The fixed-K default decision is always measured first so the tuned
	// choice can never lose to the baseline, then the analytic seeds.
	fixed := plan.Decision{K: in.FixedK}.Normalize()
	if s.evaluate(fixed, true) == nil {
		// Fatal only when there is nothing to tune; a simulation failure at
		// the fixed K still lets the seeds find a plan (Apply is memoized,
		// so the re-check is free).
		if _, rep, err := core.Apply(s.prog, plan.Uniform(fixed)); err != nil || rep.TransformedCount() == 0 {
			return Choice{}, fmt.Errorf("tune: transform did not fire at fixed K=%d under %s", in.FixedK, m.Name)
		}
	}
	for _, k := range seedKs(m, geo, in.FixedK, ladder) {
		s.evaluate(plan.Decision{K: k}.Normalize(), true)
	}
	// Refinement: hill-climb the divisor ladder from the best decision so
	// far until no neighbor improves or the measurement budget runs out.
	s.climbK(ladder)
	if !kOnly {
		// Knob stage: each non-K knob flip gets its own K-climb, because a
		// flip can be a no-op at the incumbent K (the interchange gate, for
		// one, only disagrees with "auto" on part of the ladder) — such
		// no-op rungs alias earlier candidates and cost nothing, so the
		// climb walks through them for free until the flip starts mattering.
		// A flipped plan displaces the incumbent only when strictly better;
		// afterwards one more default climb refines K under the winner.
		s.climbKnobs(ladder)
		s.climbK(ladder)
	}

	winner := s.best()
	if winner == nil {
		return Choice{}, fmt.Errorf("tune: no valid plan found under %s (fixed K=%d)", m.Name, in.FixedK)
	}
	ch.Chosen = winner.Decision
	ch.Speedup = winner.Speedup
	ch.PrepushNs = winner.PrepushNs
	if f := s.measured[planKey(fixed)]; f != nil {
		ch.FixedSpeedup = f.Speedup
	}
	// Evaluations reports the budget actually consumed (a run whose
	// simulation failed still spent a slot); SearchSimNs sums the
	// successful runs' simulated makespans.
	ch.Evaluations = s.runs
	for _, d := range s.order {
		c := s.measured[planKey(d)]
		if c == nil {
			continue
		}
		ch.Candidates = append(ch.Candidates, *c)
		ch.SearchSimNs += c.PrepushNs
	}
	return ch, nil
}

// planKey canonicalizes a decision for memo keys.
func planKey(d plan.Decision) string { return plan.Uniform(d).Key() }

// evaluate runs the pre-push variant under the decision and applies the
// oracle. A decision the transformation rejects yields no candidate and
// costs nothing against the measurement budget; a decision whose generated
// source is identical to an already-measured one aliases that measurement
// for free (knob flips that change nothing — e.g. forcing interchange off
// where it never fired — collapse onto the earlier candidate).
func (s *search) evaluate(d plan.Decision, seeded bool) *Candidate {
	d = d.Normalize()
	key := planKey(d)
	if c, ok := s.measured[key]; ok {
		return c
	}
	src, rep, err := core.Apply(s.prog, plan.Uniform(d))
	if err != nil || rep.TransformedCount() == 0 {
		s.measured[key] = nil
		return nil
	}
	if c, ok := s.bySrc[src]; ok {
		s.measured[key] = c
		return c
	}
	if s.runs >= s.maxM {
		return nil
	}
	s.runs++
	res, err := simulate(src, s.in.NP, s.machine)
	if err != nil {
		s.measured[key] = nil
		return nil
	}
	c := &Candidate{Decision: d, PrepushNs: int64(res.Elapsed()), Seeded: seeded}
	if c.PrepushNs > 0 {
		c.Speedup = float64(s.origNs) / float64(c.PrepushNs)
	}
	same, _ := interp.SameObservable(s.orig, res, s.arrays...)
	c.Identical = same
	s.measured[key] = c
	s.bySrc[src] = c
	s.order = append(s.order, d)
	return c
}

// climbK hill-climbs the divisor ladder around the best decision, varying
// only K (the other knobs ride along from the incumbent).
func (s *search) climbK(ladder []int64) {
	for {
		best := s.best()
		if best == nil {
			break
		}
		// Neighbor rungs: for an on-ladder best, the rungs either side; for
		// an off-ladder best (a fixed K dividing neither the partition size
		// nor the trip count), the rungs bracketing it.
		i := sort.Search(len(ladder), func(j int) bool { return ladder[j] >= best.Decision.K })
		neighbors := []int{i - 1, i}
		if i < len(ladder) && ladder[i] == best.Decision.K {
			neighbors = []int{i - 1, i + 1}
		}
		improved := false
		for _, j := range neighbors {
			if j < 0 || j >= len(ladder) {
				continue
			}
			d := best.Decision
			d.K = ladder[j]
			if _, seen := s.measured[planKey(d)]; seen {
				continue
			}
			if c := s.evaluate(d, false); c != nil && c.Identical && c.Speedup > best.Speedup {
				improved = true
			}
		}
		if !improved || s.runs >= s.maxM {
			break
		}
	}
}

// climbKnobs explores each non-K knob flip of the incumbent in a fixed
// order. Every flip is evaluated at the incumbent K and then hill-climbed
// along the ladder within its own variant: a flip whose code is identical
// at the incumbent K (an aliased no-op) is walked outward for free until
// the rungs where it changes the schedule. The interchange flips lead —
// the fixed granularity gate is the most platform-sensitive heuristic.
func (s *search) climbKnobs(ladder []int64) {
	flips := []func(*plan.Decision){
		func(d *plan.Decision) { d.Interchange = plan.InterchangeOff },
		func(d *plan.Decision) { d.Interchange = plan.InterchangeOn },
		func(d *plan.Decision) { d.Wait = flipWait(d.Wait) },
		func(d *plan.Decision) { d.SendOrder = flipOrder(d.SendOrder) },
	}
	for _, flip := range flips {
		best := s.best()
		if best == nil || s.runs >= s.maxM {
			break
		}
		d := best.Decision
		flip(&d)
		d = d.Normalize()
		if planKey(d) == planKey(best.Decision) {
			continue
		}
		s.climbVariant(d, ladder)
	}
}

// climbVariant walks K outward along the ladder in both directions from
// the variant's starting rung, with the non-K knobs held fixed. A rung
// where the flip is a codegen no-op aliases an earlier candidate (equal
// speedup, zero cost against the budget) and the walk continues through
// it — that is how the climb crosses the region where, say, the
// interchange gate's own verdict coincides with the forced knob — as does
// a rung the transform rejects (also free). A direction stops at the
// first genuinely measured rung that fails to improve the variant's local
// best, or when the budget runs out. The global best picks up any
// strictly better candidate through the shared measurement pool.
func (s *search) climbVariant(d plan.Decision, ladder []int64) {
	cur := s.evaluate(d, false)
	if cur == nil || !cur.Identical {
		return
	}
	curSp := cur.Speedup
	i := sort.Search(len(ladder), func(j int) bool { return ladder[j] >= d.K })
	starts := [2]int{i - 1, i + 1}
	if i >= len(ladder) || ladder[i] != d.K {
		starts = [2]int{i - 1, i} // off-ladder start: bracket it
	}
	for dir, j := range starts {
		step := 1
		if dir == 0 {
			step = -1
		}
		for ; j >= 0 && j < len(ladder); j += step {
			if s.runs >= s.maxM {
				return
			}
			nd := d
			nd.K = ladder[j]
			c := s.evaluate(nd, false)
			if c == nil {
				continue // rejected or failed rung: free, keep walking
			}
			if !c.Identical {
				break
			}
			aliased := planKey(c.Decision) != planKey(nd)
			if c.Speedup > curSp {
				curSp = c.Speedup
			} else if !aliased {
				break
			}
		}
	}
}

func flipWait(w plan.WaitSchedule) plan.WaitSchedule {
	if w == plan.WaitPerTile {
		return plan.WaitDeferred
	}
	return plan.WaitPerTile
}

func flipOrder(o plan.SendOrder) plan.SendOrder {
	if o == plan.SendSequential {
		return plan.SendStaggered
	}
	return plan.SendSequential
}

// best returns the oracle-identical candidate with the highest speedup.
// Ties prefer the candidate measured earliest — the fixed-K default-knob
// decision first, then seeds, then refinements — so a knob flip or retile
// displaces the incumbent only when strictly better.
func (s *search) best() *Candidate {
	var best *Candidate
	for _, d := range s.order {
		c := s.measured[planKey(d)]
		if c == nil || !c.Identical {
			continue
		}
		if best == nil || c.Speedup > best.Speedup {
			best = c
		}
	}
	return best
}

// simulate loads and runs one variant on the virtual cluster under the
// machine's CPU cost model and network profile.
func simulate(src string, np int, m plan.Machine) (*interp.Result, error) {
	prog, err := interp.Load(src)
	if err != nil {
		return nil, err
	}
	prog.Costs = m.Costs
	return prog.Run(np, m.Profile)
}

// seedKs proposes candidate tile sizes from the machine's analytic cost
// model, snapped onto the divisor ladder (every rung is legal for every
// pattern). Seeds, in model terms:
//
//   - the eager/rendezvous crossover: the largest K whose per-tile message
//     stays under the profile's eager threshold, and the next rung above it
//     (the protocol switch is the sharpest discontinuity in transfer cost);
//   - setup amortization: the smallest K whose wire time covers ~4× the
//     per-message setup (send overhead + latency), below which overheads
//     dominate;
//   - the pipeline optimum K* = sqrt(trip · setup / (G · bytesPerIter)),
//     balancing the per-tile setup against the exposed drain of the last
//     tile (the classic two-term pipelining tradeoff);
//   - the compute-balance rung: the tile whose computation hides one
//     message's setup+latency (finer tiles stall the pipeline);
//   - the fixed K (so the tuned result can never lose to the baseline) and
//     the full partition (one tile per owner, the coarsest useful point).
func seedKs(m plan.Machine, geo *geom, fixedK int64, ladder []int64) []int64 {
	prof, costs := m.Profile, m.Costs
	set := map[int64]bool{}
	snap := func(k int64) {
		if k < 1 {
			k = 1
		}
		lo, hi := snapToLadder(ladder, k)
		set[lo] = true
		set[hi] = true
	}
	set[fixedK] = true
	if len(ladder) > 0 {
		set[ladder[len(ladder)-1]] = true // whole partition
	}
	b := geo.perIterBytes
	if b > 0 {
		snap(prof.EagerThreshold / b)
		setup := float64(prof.OSend) + float64(prof.Latency)
		if prof.GapNsPerByte > 0 {
			snap(int64(4 * setup / (prof.GapNsPerByte * float64(b))))
			if geo.trip > 0 {
				snap(int64(math.Sqrt(float64(geo.trip) * setup / (prof.GapNsPerByte * float64(b)))))
			}
		}
		perIterCompute := float64(costs.Store+costs.LoopIter+2*costs.Op) * float64(b) / 4
		if perIterCompute > 0 {
			snap(int64(setup / perIterCompute))
		}
	}
	var out []int64
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// divisors returns all divisors of n in ascending order (nil when n < 1).
func divisors(n int64) []int64 {
	var out []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if d != n/d {
				out = append(out, n/d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeLadders unions two sorted rung lists into one sorted, deduplicated
// ladder.
func mergeLadders(a, b []int64) []int64 {
	set := map[int64]bool{}
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		set[k] = true
	}
	out := make([]int64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapToLadder returns the nearest rungs at or below and at or above k
// (clamped to the ladder ends).
func snapToLadder(ladder []int64, k int64) (int64, int64) {
	if len(ladder) == 0 {
		return k, k
	}
	i := sort.Search(len(ladder), func(i int) bool { return ladder[i] >= k })
	hi := i
	if hi == len(ladder) {
		hi = len(ladder) - 1
	}
	lo := i
	if lo > 0 && (lo == len(ladder) || ladder[lo] != k) {
		lo--
	}
	return ladder[lo], ladder[hi]
}
