// Package tune picks the pre-push tile size K automatically, per kernel and
// per network profile. The paper (§2) leaves K to the user; related work
// (Cui & Pericàs; Kumar et al.) shows overlap granularity is platform-
// sensitive and that an analytic cost model can seed a measured search
// cheaply. The tuner does exactly that: candidate tile sizes are seeded
// from the LogGP-flavoured profile constants and the interpreter cost model
// (eager/rendezvous crossover, per-message setup amortization, and the
// sqrt-form pipeline optimum), then refined by a small hill-climbing search
// of simulated runs on the virtual cluster. Every measured candidate passes
// through the same parse → transform → run pipeline as the harness and is
// checked against the bit-identical oracle; a candidate that corrupts
// results is never chosen.
package tune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
)

// DefaultMaxMeasured bounds measured candidates per (kernel, profile).
const DefaultMaxMeasured = 10

// Input is the kernel to tune.
type Input struct {
	Source   string // untransformed Fortran source
	NP       int    // rank count
	FixedK   int64  // the fixed tile size used as the search baseline
	Profiles []netsim.Profile
}

// Options configures the search.
type Options struct {
	// MaxMeasured caps simulated pre-push runs per profile (seeds plus
	// refinement steps); <= 0 selects DefaultMaxMeasured.
	MaxMeasured int
	// Arrays names the observable arrays the oracle compares (besides all
	// printed output); empty means {"ar"}.
	Arrays []string
	// Costs optionally overrides the interpreter cost model (nil = default).
	Costs *interp.CostModel
}

// Candidate is one evaluated tile size under one profile.
type Candidate struct {
	K         int64   `json:"k"`
	PrepushNs int64   `json:"prepush_ns"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
	Seeded    bool    `json:"seeded"` // proposed by the analytic model
}

// Choice is the tuning outcome for one (kernel, profile) pair.
type Choice struct {
	Profile      string      `json:"profile"`
	Offload      bool        `json:"offload"`
	ChosenK      int64       `json:"chosen_k"`
	Speedup      float64     `json:"tuned_speedup"`
	PrepushNs    int64       `json:"tuned_prepush_ns"`
	OriginalNs   int64       `json:"original_ns"`
	FixedK       int64       `json:"fixed_k"`
	FixedSpeedup float64     `json:"fixed_speedup"`
	Evaluations  int         `json:"evaluations"`   // measured pre-push runs
	SearchSimNs  int64       `json:"search_sim_ns"` // simulated time spent searching
	Candidates   []Candidate `json:"candidates"`
}

// Tune searches tile sizes for the kernel under every profile. The search
// is fully deterministic: the same input and options always produce the
// same choices (candidate order is sorted, ties prefer the smaller K).
func Tune(in Input, opts Options) ([]Choice, error) {
	arrays := opts.Arrays
	if len(arrays) == 0 {
		arrays = []string{"ar"}
	}
	maxM := opts.MaxMeasured
	if maxM <= 0 {
		maxM = DefaultMaxMeasured
	}

	rt, err := core.NewRetiler(in.Source, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("tune: parse: %w", err)
	}
	// Baseline transform at the fixed K establishes the kernel's geometry
	// (partition size, message volume per iteration) for the analytic seeds.
	_, rep, err := rt.Retile(in.FixedK)
	if err != nil {
		return nil, fmt.Errorf("tune: transform at fixed K=%d: %w", in.FixedK, err)
	}
	geo := geometry(rep)
	if geo == nil {
		return nil, fmt.Errorf("tune: transform did not fire at fixed K=%d: %s", in.FixedK, rep.FirstRejection())
	}
	// Candidate ladder: divisors of the partition size (the legality
	// constraint of the subset-send and indirect schedules) unioned with
	// divisors of the tiled-loop trip count (the natural rungs when the
	// tiled loop is not the partitioned dimension). A rung the transform
	// rejects at evaluation time is skipped without costing a measurement.
	ladder := mergeLadders(divisors(geo.psz), divisors(geo.trip))

	var choices []Choice
	for _, prof := range in.Profiles {
		ch, err := tuneProfile(rt, in, prof, geo, ladder, arrays, maxM, opts.Costs)
		if err != nil {
			return nil, err
		}
		choices = append(choices, ch)
	}
	return choices, nil
}

// geom carries the kernel facts the analytic seeding needs.
type geom struct {
	psz          int64 // partition size in last-dimension units
	trip         int64 // tiled-loop trip count (0 when unknown)
	perIterBytes int64 // bytes of one point-to-point message per tiled iteration
}

func geometry(rep *core.Report) *geom {
	for _, s := range rep.Sites {
		if !s.Transformed || s.Result == nil {
			continue
		}
		res := s.Result
		g := &geom{psz: res.PartitionSize}
		if res.TileCount > 0 {
			g.trip = res.TileCount*res.K + res.Leftover
		}
		if res.TileMsgElems > 0 && res.K > 0 {
			g.perIterBytes = res.TileMsgElems * 4 / res.K
		}
		return g
	}
	return nil
}

// tuneProfile runs the seeded, measured search for one profile.
func tuneProfile(rt *core.Retiler, in Input, prof netsim.Profile, geo *geom,
	ladder []int64, arrays []string, maxM int, costs *interp.CostModel) (Choice, error) {

	orig, err := simulate(in.Source, in.NP, prof, costs)
	if err != nil {
		return Choice{}, fmt.Errorf("tune: original run under %s: %w", prof.Name, err)
	}
	origNs := int64(orig.Elapsed())

	ch := Choice{
		Profile: prof.Name, Offload: prof.Offload,
		OriginalNs: origNs, FixedK: in.FixedK,
	}
	measured := map[int64]*Candidate{}
	runs := 0

	// evaluate runs the pre-push variant at k and applies the oracle. A k
	// the transformation rejects yields no candidate and costs nothing
	// against the measurement budget.
	evaluate := func(k int64, seeded bool) *Candidate {
		if c, ok := measured[k]; ok {
			return c
		}
		if runs >= maxM {
			return nil
		}
		src, rep, err := rt.Retile(k)
		if err != nil || rep.TransformedCount() == 0 {
			measured[k] = nil
			return nil
		}
		runs++
		res, err := simulate(src, in.NP, prof, costs)
		if err != nil {
			measured[k] = nil
			return nil
		}
		c := &Candidate{K: k, PrepushNs: int64(res.Elapsed()), Seeded: seeded}
		if c.PrepushNs > 0 {
			c.Speedup = float64(origNs) / float64(c.PrepushNs)
		}
		same, _ := interp.SameObservable(orig, res, arrays...)
		c.Identical = same
		measured[k] = c
		return c
	}

	// The fixed K is always measured first so the tuned choice can never
	// lose to the baseline, then the analytic seeds.
	evaluate(in.FixedK, true)
	for _, k := range seedKs(prof, geo, in.FixedK, costs, ladder) {
		evaluate(k, true)
	}
	// Refinement: hill-climb the divisor ladder from the best seed until no
	// neighbor improves or the measurement budget runs out.
	for {
		best := bestCandidate(measured)
		if best == nil {
			break
		}
		// Neighbor rungs: for an on-ladder best, the rungs either side; for
		// an off-ladder best (a fixed K dividing neither the partition size
		// nor the trip count), the rungs bracketing it.
		i := sort.Search(len(ladder), func(j int) bool { return ladder[j] >= best.K })
		neighbors := []int{i - 1, i}
		if i < len(ladder) && ladder[i] == best.K {
			neighbors = []int{i - 1, i + 1}
		}
		improved := false
		for _, j := range neighbors {
			if j < 0 || j >= len(ladder) {
				continue
			}
			if _, seen := measured[ladder[j]]; seen {
				continue
			}
			if c := evaluate(ladder[j], false); c != nil && c.Identical && c.Speedup > best.Speedup {
				improved = true
			}
		}
		if !improved || runs >= maxM {
			break
		}
	}

	winner := bestCandidate(measured)
	if winner == nil {
		return Choice{}, fmt.Errorf("tune: no valid tile size found under %s (fixed K=%d)", prof.Name, in.FixedK)
	}
	ch.ChosenK = winner.K
	ch.Speedup = winner.Speedup
	ch.PrepushNs = winner.PrepushNs
	if fixed := measured[in.FixedK]; fixed != nil {
		ch.FixedSpeedup = fixed.Speedup
	}
	// Evaluations reports the budget actually consumed (a run whose
	// simulation failed still spent a slot); SearchSimNs sums the
	// successful runs' simulated makespans.
	ch.Evaluations = runs
	for _, k := range sortedKeys(measured) {
		c := measured[k]
		if c == nil {
			continue
		}
		ch.Candidates = append(ch.Candidates, *c)
		ch.SearchSimNs += c.PrepushNs
	}
	return ch, nil
}

// simulate loads and runs one variant on the virtual cluster.
func simulate(src string, np int, prof netsim.Profile, costs *interp.CostModel) (*interp.Result, error) {
	prog, err := interp.Load(src)
	if err != nil {
		return nil, err
	}
	if costs != nil {
		prog.Costs = *costs
	}
	return prog.Run(np, prof)
}

// seedKs proposes candidate tile sizes from the analytic cost model, snapped
// onto the divisor ladder of the partition size (every rung is legal for
// every pattern). Seeds, in model terms:
//
//   - the eager/rendezvous crossover: the largest K whose per-tile message
//     stays under the profile's eager threshold, and the next rung above it
//     (the protocol switch is the sharpest discontinuity in transfer cost);
//   - setup amortization: the smallest K whose wire time covers ~4× the
//     per-message setup (send overhead + latency), below which overheads
//     dominate;
//   - the pipeline optimum K* = sqrt(trip · setup / (G · bytesPerIter)),
//     balancing the per-tile setup against the exposed drain of the last
//     tile (the classic two-term pipelining tradeoff);
//   - the fixed K (so the tuned result can never lose to the baseline) and
//     the full partition (one tile per owner, the coarsest useful point).
func seedKs(prof netsim.Profile, geo *geom, fixedK int64, costs *interp.CostModel, ladder []int64) []int64 {
	set := map[int64]bool{}
	snap := func(k int64) {
		if k < 1 {
			k = 1
		}
		lo, hi := snapToLadder(ladder, k)
		set[lo] = true
		set[hi] = true
	}
	set[fixedK] = true
	if len(ladder) > 0 {
		set[ladder[len(ladder)-1]] = true // whole partition
	}
	b := geo.perIterBytes
	if b > 0 {
		snap(prof.EagerThreshold / b)
		setup := float64(prof.OSend) + float64(prof.Latency)
		if prof.GapNsPerByte > 0 {
			snap(int64(4 * setup / (prof.GapNsPerByte * float64(b))))
			if geo.trip > 0 {
				snap(int64(math.Sqrt(float64(geo.trip) * setup / (prof.GapNsPerByte * float64(b)))))
			}
		}
		if costs != nil {
			// Compute-balance rung: the tile whose computation hides one
			// message's setup+latency (finer tiles stall the pipeline).
			perIterCompute := float64(costs.Store+costs.LoopIter+2*costs.Op) * float64(b) / 4
			if perIterCompute > 0 {
				snap(int64(setup / perIterCompute))
			}
		}
	}
	var out []int64
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// divisors returns all divisors of n in ascending order (nil when n < 1).
func divisors(n int64) []int64 {
	var out []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if d != n/d {
				out = append(out, n/d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeLadders unions two sorted rung lists into one sorted, deduplicated
// ladder.
func mergeLadders(a, b []int64) []int64 {
	set := map[int64]bool{}
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		set[k] = true
	}
	out := make([]int64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapToLadder returns the nearest rungs at or below and at or above k
// (clamped to the ladder ends).
func snapToLadder(ladder []int64, k int64) (int64, int64) {
	if len(ladder) == 0 {
		return k, k
	}
	i := sort.Search(len(ladder), func(i int) bool { return ladder[i] >= k })
	hi := i
	if hi == len(ladder) {
		hi = len(ladder) - 1
	}
	lo := i
	if lo > 0 && (lo == len(ladder) || ladder[lo] != k) {
		lo--
	}
	return ladder[lo], ladder[hi]
}

// bestCandidate returns the identical candidate with the highest speedup,
// ties broken toward the smaller K; nil when nothing valid was measured.
func bestCandidate(measured map[int64]*Candidate) *Candidate {
	var best *Candidate
	for _, k := range sortedKeys(measured) {
		c := measured[k]
		if c == nil || !c.Identical {
			continue
		}
		if best == nil || c.Speedup > best.Speedup {
			best = c
		}
	}
	return best
}

func sortedKeys(m map[int64]*Candidate) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
