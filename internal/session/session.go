// Package session scopes the pipeline's shared state — the compiled-variant
// store, the plan memo, and the execution engine — into one injected object
// instead of package globals. A Session is what a long-lived service holds:
// repeat tuning queries hit the memo, repeat variant executions hit the
// store, and two sessions in one process never share counters. The
// zero-configuration default (fresh in-memory store, fresh memo, compiled
// engine) reproduces the historical per-run behavior exactly.
package session

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/tune"
)

// Options configures a session.
type Options struct {
	// Engine selects the execution engine; "" means exec.Default.
	Engine exec.Engine
	// Store backs compiled-variant lookups; nil means a fresh in-memory
	// store private to this session. Pass an exec.DiskStore to carry
	// variant knowledge across processes.
	Store exec.VariantStore
	// Memo caches tuning outcomes by analysis fingerprint; nil means a
	// fresh memo private to this session.
	Memo *tune.Memo
}

// Session carries the pipeline state one service instance shares across
// queries. Safe for concurrent use.
type Session struct {
	engine exec.Engine
	store  exec.VariantStore
	memo   *tune.Memo

	mu       sync.Mutex
	programs map[programKey]*core.Program
}

type programKey struct {
	src string
	np  int64
}

// New builds a session; the zero Options value gives the defaults.
func New(opts Options) (*Session, error) {
	engine, err := exec.ParseEngine(string(opts.Engine))
	if err != nil {
		return nil, fmt.Errorf("session: %v", err)
	}
	store := opts.Store
	if store == nil {
		store = exec.NewMemStore()
	}
	memo := opts.Memo
	if memo == nil {
		memo = tune.NewMemo()
	}
	return &Session{
		engine:   engine,
		store:    store,
		memo:     memo,
		programs: map[programKey]*core.Program{},
	}, nil
}

// Engine returns the session's execution engine.
func (s *Session) Engine() exec.Engine { return s.engine }

// Store returns the session's variant store.
func (s *Session) Store() exec.VariantStore { return s.store }

// Memo returns the session's plan memo.
func (s *Session) Memo() *tune.Memo { return s.memo }

// Runner returns the execution handle binding the session's engine to its
// store.
func (s *Session) Runner() exec.Runner {
	return exec.Runner{Engine: s.engine, Store: s.store}
}

// Analyze parses and analyzes src, memoized per (source, NP): repeat
// queries over the same program reuse its analysis and, through
// core.Apply's plan-key memo on the shared Program, every variant already
// generated for it.
func (s *Session) Analyze(src string, np int64) (*core.Program, error) {
	key := programKey{src: src, np: np}
	s.mu.Lock()
	if p, ok := s.programs[key]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()
	// Analyze outside the lock (it probe-transforms every site); a racing
	// duplicate analysis of the same source is harmless and the first
	// stored wins.
	p, err := core.Analyze(src, core.AnalyzeOptions{NP: np})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.programs[key]; ok {
		return prev, nil
	}
	s.programs[key] = p
	return p, nil
}

// Tune runs the plan search through the session: the variant store backs
// every measured run, and the plan memo short-circuits (fingerprint,
// machine) pairs tuned before. Caller options other than Store/Memo/Engine
// pass through.
func (s *Session) Tune(in tune.Input, opts tune.Options) ([]tune.Choice, error) {
	opts.Store = s.store
	opts.Memo = s.memo
	if opts.Engine == "" {
		opts.Engine = s.engine
	}
	if in.Program == nil && in.Source != "" {
		p, err := s.Analyze(in.Source, 0)
		if err != nil {
			return nil, fmt.Errorf("session: analyze: %w", err)
		}
		in.Program = p
	}
	return tune.Tune(in, opts)
}

// Query is one plan request: tune this program for this machine.
type Query struct {
	// Source is the untransformed Fortran program.
	Source string `json:"source"`
	// Machine names the target machine model (plan.ByName).
	Machine string `json:"machine"`
	// NP is the simulated rank count; required (the measured search runs
	// the program).
	NP int `json:"np"`
	// FixedK is the fixed-tile baseline the search may never lose to;
	// <= 0 selects the machine's default tile size.
	FixedK int64 `json:"fixed_k,omitempty"`
	// MaxMeasured caps measured candidates; <= 0 selects the tuner
	// default.
	MaxMeasured int `json:"max_measured,omitempty"`
	// KOnly restricts the search to tile sizes.
	KOnly bool `json:"k_only,omitempty"`
	// Arrays names the observable arrays the oracle compares; empty means
	// the default {"ar"}.
	Arrays []string `json:"arrays,omitempty"`
}

// Result is a plan query's outcome.
type Result struct {
	// Fingerprint is the analysis fingerprint the memo keyed on.
	Fingerprint string `json:"fingerprint"`
	// MemoHit reports whether the plan came from the memo (no search ran).
	MemoHit bool `json:"memo_hit"`
	// Choice is the tuning outcome; Choice.Plan is the replayable plan.
	Choice tune.Choice `json:"choice"`
}

// resolvedQuery is a validated Query bound to the session: the machine
// model, the memoized analysis, the resolved fixed-K baseline, and the
// exact memo key tune.Tune would use for it.
type resolvedQuery struct {
	machine     plan.Machine
	prog        *core.Program
	fixedK      int64
	fingerprint string
	memoKey     string
}

// resolveQuery validates a query and resolves every default the tuner
// would resolve (fixed-K, measurement budget, oracle arrays), yielding the
// memo key the search for it runs under. Plan and PlanRemote resolving
// through one helper is what guarantees a remotely-tuned choice is stored
// under the same key a local search would have used.
func (s *Session) resolveQuery(q Query) (resolvedQuery, error) {
	if q.Source == "" {
		return resolvedQuery{}, fmt.Errorf("session: query needs a program source")
	}
	if q.NP < 1 {
		return resolvedQuery{}, fmt.Errorf("session: query needs np >= 1 (the search simulates the program)")
	}
	m, err := plan.ByName(q.Machine)
	if err != nil {
		return resolvedQuery{}, fmt.Errorf("session: %w", err)
	}
	fixedK := q.FixedK
	if fixedK <= 0 {
		fixedK = m.DefaultK()
	}
	prog, err := s.Analyze(q.Source, int64(q.NP))
	if err != nil {
		return resolvedQuery{}, fmt.Errorf("session: analyze: %w", err)
	}
	arrays := q.Arrays
	if len(arrays) == 0 {
		arrays = []string{"ar"}
	}
	fp := core.Fingerprint(prog, m.Name)
	key := tune.MemoKey(fp, tune.Input{NP: q.NP, FixedK: fixedK},
		tune.ResolveMaxMeasured(q.MaxMeasured, prog.TransformableCount()), q.KOnly, arrays)
	return resolvedQuery{machine: m, prog: prog, fixedK: fixedK, fingerprint: fp, memoKey: key}, nil
}

// Plan answers one tuning query through the session's memo and store: the
// first query for a (program-shape, machine) pair runs the seeded search,
// repeats are O(memo lookup).
func (s *Session) Plan(q Query) (*Result, error) {
	rq, err := s.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	choices, err := tune.Tune(tune.Input{
		Source:   q.Source,
		Program:  rq.prog,
		NP:       q.NP,
		FixedK:   rq.fixedK,
		Machines: []plan.Machine{rq.machine},
	}, tune.Options{
		MaxMeasured: q.MaxMeasured,
		Arrays:      q.Arrays,
		KOnly:       q.KOnly,
		Engine:      s.engine,
		Store:       s.store,
		Memo:        s.memo,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Fingerprint: rq.fingerprint,
		MemoHit:     choices[0].MemoHit,
		Choice:      choices[0],
	}, nil
}

// PlanRemote answers a tuning query like Plan, but delegates a memo miss to
// the remote callback (a fleet dispatch) instead of searching inline. The
// returned choice is stored in the session memo under the exact key a local
// search would have used, so the repeat of a remotely-tuned query is a
// local memo hit with no dispatch and no compiles. Warm queries never reach
// the callback at all.
func (s *Session) PlanRemote(q Query, remote func(Query) (*Result, error)) (*Result, error) {
	rq, err := s.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	if ch, ok := s.memo.Lookup(rq.memoKey); ok {
		ch.MemoHit = true
		return &Result{Fingerprint: rq.fingerprint, MemoHit: true, Choice: ch}, nil
	}
	res, err := remote(q)
	if err != nil {
		return nil, err
	}
	// The memo stores the search outcome, not the transport history: a
	// remote worker's own memo hit is still a cold answer here.
	res.MemoHit = false
	res.Choice.MemoHit = false
	res.Fingerprint = rq.fingerprint
	s.memo.Store(rq.memoKey, res.Choice)
	return res, nil
}

// IsQueryError reports whether a Plan/PlanRemote failure was caused by the
// query itself (validation, an unknown machine, or a program that does not
// parse/analyze) rather than by the search machinery — the HTTP surfaces
// map the former to 400 and the rest to 500.
func IsQueryError(err error) bool {
	msg := err.Error()
	return strings.HasPrefix(msg, "session: query") ||
		strings.HasPrefix(msg, "session: analyze") ||
		strings.Contains(msg, "unknown machine")
}

// Stats bundles the session's store and memo counters (the /stats payload).
type Stats struct {
	Store exec.StoreStats `json:"store"`
	Memo  tune.MemoStats  `json:"memo"`
}

// Stats snapshots the session counters.
func (s *Session) Stats() Stats {
	return Stats{Store: s.store.Stats(), Memo: s.memo.Stats()}
}
