// Package session scopes the pipeline's shared state — the compiled-variant
// store, the plan memo, and the execution engine — into one injected object
// instead of package globals. A Session is what a long-lived service holds:
// repeat tuning queries hit the memo, repeat variant executions hit the
// store, and two sessions in one process never share counters. The
// zero-configuration default (fresh in-memory store, fresh memo, compiled
// engine) reproduces the historical per-run behavior exactly.
package session

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/tune"
)

// Options configures a session.
type Options struct {
	// Engine selects the execution engine; "" means exec.Default.
	Engine exec.Engine
	// Store backs compiled-variant lookups; nil means a fresh in-memory
	// store private to this session. Pass an exec.DiskStore to carry
	// variant knowledge across processes.
	Store exec.VariantStore
	// Memo caches tuning outcomes by analysis fingerprint; nil means a
	// fresh memo private to this session.
	Memo *tune.Memo
}

// Session carries the pipeline state one service instance shares across
// queries. Safe for concurrent use.
type Session struct {
	engine exec.Engine
	store  exec.VariantStore
	memo   *tune.Memo

	mu       sync.Mutex
	programs map[programKey]*core.Program
}

type programKey struct {
	src string
	np  int64
}

// New builds a session; the zero Options value gives the defaults.
func New(opts Options) (*Session, error) {
	engine, err := exec.Resolve(string(opts.Engine))
	if err != nil {
		return nil, fmt.Errorf("session: %v", err)
	}
	store := opts.Store
	if store == nil {
		store = exec.NewMemStore()
	}
	memo := opts.Memo
	if memo == nil {
		memo = tune.NewMemo()
	}
	return &Session{
		engine:   engine,
		store:    store,
		memo:     memo,
		programs: map[programKey]*core.Program{},
	}, nil
}

// Engine returns the session's execution engine.
func (s *Session) Engine() exec.Engine { return s.engine }

// Store returns the session's variant store.
func (s *Session) Store() exec.VariantStore { return s.store }

// Memo returns the session's plan memo.
func (s *Session) Memo() *tune.Memo { return s.memo }

// Runner returns the execution handle binding the session's engine to its
// store.
func (s *Session) Runner() exec.Runner {
	return exec.Runner{Engine: s.engine, Store: s.store}
}

// Analyze parses and analyzes src, memoized per (source, NP): repeat
// queries over the same program reuse its analysis and, through
// core.Apply's plan-key memo on the shared Program, every variant already
// generated for it.
func (s *Session) Analyze(src string, np int64) (*core.Program, error) {
	key := programKey{src: src, np: np}
	s.mu.Lock()
	if p, ok := s.programs[key]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()
	// Analyze outside the lock (it probe-transforms every site); a racing
	// duplicate analysis of the same source is harmless and the first
	// stored wins.
	p, err := core.Analyze(src, core.AnalyzeOptions{NP: np})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.programs[key]; ok {
		return prev, nil
	}
	s.programs[key] = p
	return p, nil
}

// Tune runs the plan search through the session: the variant store backs
// every measured run, and the plan memo short-circuits (fingerprint,
// machine) pairs tuned before. Caller options other than Store/Memo/Engine
// pass through.
func (s *Session) Tune(in tune.Input, opts tune.Options) ([]tune.Choice, error) {
	opts.Store = s.store
	opts.Memo = s.memo
	if opts.Engine == "" {
		opts.Engine = s.engine
	}
	if in.Program == nil && in.Source != "" {
		p, err := s.Analyze(in.Source, 0)
		if err != nil {
			return nil, fmt.Errorf("session: analyze: %w", err)
		}
		in.Program = p
	}
	return tune.Tune(in, opts)
}

// Query is one plan request: tune this program for this machine.
type Query struct {
	// Source is the untransformed Fortran program.
	Source string `json:"source"`
	// Machine names the target machine model (plan.ByName).
	Machine string `json:"machine"`
	// NP is the simulated rank count; required (the measured search runs
	// the program).
	NP int `json:"np"`
	// FixedK is the fixed-tile baseline the search may never lose to;
	// <= 0 selects the machine's default tile size.
	FixedK int64 `json:"fixed_k,omitempty"`
	// MaxMeasured caps measured candidates; <= 0 selects the tuner
	// default.
	MaxMeasured int `json:"max_measured,omitempty"`
	// KOnly restricts the search to tile sizes.
	KOnly bool `json:"k_only,omitempty"`
	// Arrays names the observable arrays the oracle compares; empty means
	// the default {"ar"}.
	Arrays []string `json:"arrays,omitempty"`
}

// Result is a plan query's outcome.
type Result struct {
	// Fingerprint is the analysis fingerprint the memo keyed on.
	Fingerprint string `json:"fingerprint"`
	// MemoHit reports whether the plan came from the memo (no search ran).
	MemoHit bool `json:"memo_hit"`
	// Choice is the tuning outcome; Choice.Plan is the replayable plan.
	Choice tune.Choice `json:"choice"`
}

// Plan answers one tuning query through the session's memo and store: the
// first query for a (program-shape, machine) pair runs the seeded search,
// repeats are O(memo lookup).
func (s *Session) Plan(q Query) (*Result, error) {
	if q.Source == "" {
		return nil, fmt.Errorf("session: query needs a program source")
	}
	if q.NP < 1 {
		return nil, fmt.Errorf("session: query needs np >= 1 (the search simulates the program)")
	}
	m, err := plan.ByName(q.Machine)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	fixedK := q.FixedK
	if fixedK <= 0 {
		fixedK = m.DefaultK()
	}
	prog, err := s.Analyze(q.Source, int64(q.NP))
	if err != nil {
		return nil, fmt.Errorf("session: analyze: %w", err)
	}
	choices, err := tune.Tune(tune.Input{
		Source:   q.Source,
		Program:  prog,
		NP:       q.NP,
		FixedK:   fixedK,
		Machines: []plan.Machine{m},
	}, tune.Options{
		MaxMeasured: q.MaxMeasured,
		Arrays:      q.Arrays,
		KOnly:       q.KOnly,
		Engine:      s.engine,
		Store:       s.store,
		Memo:        s.memo,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Fingerprint: core.Fingerprint(prog, m.Name),
		MemoHit:     choices[0].MemoHit,
		Choice:      choices[0],
	}, nil
}

// Stats bundles the session's store and memo counters (the /stats payload).
type Stats struct {
	Store exec.StoreStats `json:"store"`
	Memo  tune.MemoStats  `json:"memo"`
}

// Stats snapshots the session counters.
func (s *Session) Stats() Stats {
	return Stats{Store: s.store.Stats(), Memo: s.memo.Stats()}
}
