package session_test

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/session"
	"repro/internal/workload"
)

func testSource() string {
	return workload.DirectSource(workload.DirectParams{NX: 4096, NP: 4})
}

// TestPlanMemoHitOnRepeatQuery: the second identical query must come from
// the memo — same plan, no new compiled variants, no search.
func TestPlanMemoHitOnRepeatQuery(t *testing.T) {
	s, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := session.Query{Source: testSource(), Machine: "mpich-gm-2005", NP: 4}

	first, err := s.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.MemoHit {
		t.Fatal("cold query reported a memo hit")
	}
	if first.Choice.Plan == nil {
		t.Fatal("cold query returned no plan")
	}
	compiled := s.Store().Stats().Compiled
	if compiled == 0 {
		t.Fatal("cold query compiled nothing")
	}

	second, err := s.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.MemoHit {
		t.Fatal("repeat query was not served from the memo")
	}
	if second.Choice.Plan.Key() != first.Choice.Plan.Key() {
		t.Fatal("memoized plan differs from the tuned plan")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatal("fingerprint unstable across identical queries")
	}
	if got := s.Store().Stats().Compiled; got != compiled {
		t.Fatalf("repeat query compiled %d new variants, want 0", got-compiled)
	}
	if st := s.Stats(); st.Memo.Hits != 1 {
		t.Fatalf("session stats = %+v, want one memo hit", st)
	}
}

// TestPlanValidatesQuery: missing source, rank count, or an unknown
// machine must error instead of searching garbage.
func TestPlanValidatesQuery(t *testing.T) {
	s, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []session.Query{
		{Machine: "mpich-gm-2005", NP: 4},
		{Source: testSource(), Machine: "mpich-gm-2005"},
		{Source: testSource(), Machine: "no-such-machine", NP: 4},
	}
	for i, q := range bad {
		if _, err := s.Plan(q); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

// TestSessionsAreIsolated: two sessions in one process share no counters —
// the satellite fix for the old process-global cache reset races.
func TestSessionsAreIsolated(t *testing.T) {
	a, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := session.Query{Source: testSource(), Machine: "mpich-gm-2005", NP: 4}
	if _, err := a.Plan(q); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Store != (exec.StoreStats{}) || st.Memo.Entries != 0 {
		t.Fatalf("session b saw session a's traffic: %+v", st)
	}
	// The same query against b misses b's memo (fresh search).
	res, err := b.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoHit {
		t.Fatal("fresh session hit a memo it never filled")
	}
}

// TestSessionSharedDiskStore: a session over a warm disk store re-tunes
// (the memo is in-process) but recompiles nothing — every variant the
// search measures is already store knowledge.
func TestSessionSharedDiskStore(t *testing.T) {
	dir := t.TempDir()
	q := session.Query{Source: testSource(), Machine: "mpich-gm-2005", NP: 4}

	cold, err := exec.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := session.New(session.Options{Store: cold})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats().Compiled == 0 {
		t.Fatal("cold session compiled nothing")
	}

	warm, err := exec.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := session.New(session.Options{Store: warm})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s2.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Compiled != 0 {
		t.Fatalf("warm session compiled %d variants, want 0 (stats %+v)", st.Compiled, st)
	}
	if st.DiskHits == 0 {
		t.Fatal("warm session recorded no disk hits")
	}
	if second.Choice.Plan.Key() != first.Choice.Plan.Key() {
		t.Fatal("warm session tuned to a different plan")
	}
}

// TestAnalyzeCachedPerSession: repeat Analyze over one source returns the
// identical Program, so core.Apply's plan-key memo is shared across
// queries.
func TestAnalyzeCachedPerSession(t *testing.T) {
	s, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := testSource()
	p1, err := s.Analyze(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Analyze(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeat analysis returned a distinct Program")
	}
	p3, err := s.Analyze(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("distinct rank counts share one analysis")
	}
}
