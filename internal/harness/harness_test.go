package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/session"
	"repro/internal/workload"
)

// smallCorpus returns a fast, family-diverse prefix of the generated corpus.
func smallCorpus(t testing.TB, n int) []workload.Scenario {
	t.Helper()
	scenarios := workload.GenerateScenarios(workload.GenOptions{Limit: n})
	if len(scenarios) != n {
		t.Fatalf("corpus prefix has %d scenarios, want %d", len(scenarios), n)
	}
	return scenarios
}

// TestDifferentialSweep is the end-to-end conformance check on a corpus
// prefix: every transformed program must produce bit-identical observable
// results under both profiles.
func TestDifferentialSweep(t *testing.T) {
	rep, err := Run(Config{Scenarios: smallCorpus(t, 6), Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Errors != 0 {
		t.Fatalf("errors in sweep:\n%s", rep.Table())
	}
	if rep.Summary.Correct != rep.Summary.Scenarios {
		t.Fatalf("correctness oracle failed:\n%s", rep.Table())
	}
	families := map[string]bool{}
	for _, o := range rep.Scenarios {
		families[o.Family] = true
		if want := len(plan.DefaultSweep()); len(o.Profiles) != want {
			t.Errorf("%s: %d profile runs, want %d (the default sweep set)", o.Name, len(o.Profiles), want)
		}
		for _, pr := range o.Profiles {
			if pr.OriginalNs <= 0 || pr.PrepushNs <= 0 {
				t.Errorf("%s/%s: nonpositive makespan", o.Name, pr.Profile)
			}
		}
	}
	if len(families) < 4 {
		t.Errorf("corpus prefix covers %d families, want ≥ 4 (prefix must stay diverse)", len(families))
	}
}

// TestDeterministicAcrossParallelism: the sweep's report must be identical
// regardless of worker count — concurrency must not leak into results.
func TestDeterministicAcrossParallelism(t *testing.T) {
	corpus := smallCorpus(t, 5)
	var reports [][]byte
	for _, par := range []int{1, 4} {
		rep, err := Run(Config{Scenarios: corpus, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		// Wall time and variant-cache traffic vary with scheduling; every
		// measured and derived number must not.
		rep.Summary.SweepWallNs = 0
		rep.Summary.VariantsCompiled = 0
		rep.Summary.CacheHits = 0
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Error("report differs between parallelism 1 and 4")
	}
}

// TestEnginesAgreeFixedAndTuned: sweeping a family-diverse corpus prefix
// under the walk oracle and the compiled engine must produce identical
// reports — fixed measurements, oracle verdicts, and every tuned decision
// — modulo the engine name and the wall/cache counters, on both the fixed
// and the tuned paths. (The full-corpus fixed-path differential lives in
// internal/exec; this is the tuned-path differential at harness level.)
func TestEnginesAgreeFixedAndTuned(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 5
	}
	corpus := smallCorpus(t, n)
	norm := func(r *Report) string {
		r.Engine = ""
		r.Summary.SweepWallNs = 0
		r.Summary.VariantsCompiled = 0
		r.Summary.CacheHits = 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	for _, tuned := range []bool{false, true} {
		walk, err := Run(Config{Scenarios: corpus, Tune: tuned, Engine: exec.EngineWalk})
		if err != nil {
			t.Fatal(err)
		}
		if walk.Engine != string(exec.EngineWalk) {
			t.Fatalf("engine recorded as %q", walk.Engine)
		}
		want := norm(walk)
		for _, eng := range []exec.Engine{exec.EngineCompile, exec.EngineBytecode} {
			fast, err := Run(Config{Scenarios: corpus, Tune: tuned, Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			if fast.Engine != string(eng) {
				t.Fatalf("engine recorded as %q, want %q", fast.Engine, eng)
			}
			if got := norm(fast); got != want {
				t.Errorf("tune=%v: walk and %s reports differ:\n%s\nvs\n%s", tuned, eng, want, got)
			}
		}
	}
}

// TestCompiledSweepRecordsCacheEconomics: a compile-engine sweep must
// report its variant-store traffic and wall time in the summary fields.
// Each Run gets a private session (exact counts, no global state to
// reset); sharing compiled variants across sweeps takes an explicit shared
// session.
func TestCompiledSweepRecordsCacheEconomics(t *testing.T) {
	corpus := smallCorpus(t, 3)
	rep, err := Run(Config{Scenarios: corpus, Engine: exec.EngineCompile})
	if err != nil {
		t.Fatal(err)
	}
	// 3 scenarios × (original + transformed) variants.
	if rep.Summary.VariantsCompiled != 6 {
		t.Errorf("VariantsCompiled = %d, want 6", rep.Summary.VariantsCompiled)
	}
	// Every variant is looked up once per machine: one compile plus
	// len(machines)-1 hits each.
	wantHits := int64(6 * (len(plan.DefaultSweep()) - 1))
	if rep.Summary.CacheHits != wantHits {
		t.Errorf("CacheHits = %d, want %d", rep.Summary.CacheHits, wantHits)
	}
	if rep.Summary.SweepWallNs <= 0 {
		t.Error("SweepWallNs not recorded")
	}
	// A second private-session sweep compiles everything again (sessions
	// are isolated); the same sweep through a shared session is served
	// from the first sweep's store.
	private, err := Run(Config{Scenarios: corpus, Engine: exec.EngineCompile})
	if err != nil {
		t.Fatal(err)
	}
	if private.Summary.VariantsCompiled != 6 {
		t.Errorf("private-session sweep compiled %d variants, want 6", private.Summary.VariantsCompiled)
	}
	sess, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(Config{Scenarios: corpus, Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	if first.Summary.VariantsCompiled != 6 {
		t.Errorf("cold shared-session sweep compiled %d variants, want 6", first.Summary.VariantsCompiled)
	}
	again, err := Run(Config{Scenarios: corpus, Session: sess})
	if err != nil {
		t.Fatal(err)
	}
	if again.Summary.VariantsCompiled != 0 {
		t.Errorf("warm shared-session sweep compiled %d variants, want 0", again.Summary.VariantsCompiled)
	}
	walk, err := Run(Config{Scenarios: corpus, Engine: exec.EngineWalk})
	if err != nil {
		t.Fatal(err)
	}
	if walk.Summary.VariantsCompiled != 0 || walk.Summary.CacheHits != 0 {
		t.Errorf("walk sweep touched the variant store: %+v", walk.Summary)
	}
	// A config engine that disagrees with the session's is refused.
	if _, err := Run(Config{Scenarios: corpus, Session: sess, Engine: exec.EngineWalk}); err == nil {
		t.Error("engine/session disagreement accepted")
	}
}

// TestWarmDiskStoreAcrossSessions: two sweeps in fresh sessions over one
// shared -cache-dir: the cold sweep compiles and persists every variant,
// the warm sweep compiles 0 (all disk hits) and reports identical results
// modulo the volatile counters — the CI warm-cache job's contract.
func TestWarmDiskStoreAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	corpus := smallCorpus(t, 3)
	sweep := func() *Report {
		t.Helper()
		store, err := exec.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := session.New(session.Options{Store: store})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(Config{Scenarios: corpus, Tune: true, Session: sess})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Summary.Errors != 0 || rep.Summary.Correct != len(corpus) {
			t.Fatalf("sweep failed:\n%s", rep.Table())
		}
		return rep
	}
	cold := sweep()
	if cold.Summary.VariantsCompiled == 0 {
		t.Fatal("cold sweep compiled nothing")
	}
	if cold.Summary.DiskHits != 0 {
		t.Errorf("cold sweep reported %d disk hits over an empty store", cold.Summary.DiskHits)
	}
	warm := sweep()
	if warm.Summary.VariantsCompiled != 0 {
		t.Errorf("warm sweep compiled %d variants, want 0", warm.Summary.VariantsCompiled)
	}
	if warm.Summary.DiskHits != cold.Summary.VariantsCompiled {
		t.Errorf("warm sweep had %d disk hits, want %d (every cold compile)",
			warm.Summary.DiskHits, cold.Summary.VariantsCompiled)
	}
	// Identical results, modulo the volatile execution counters.
	norm := func(r *Report) string {
		r.Summary.SweepWallNs = 0
		r.Summary.VariantsCompiled = 0
		r.Summary.CacheHits = 0
		r.Summary.DiskHits = 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := norm(cold), norm(warm); a != b {
		t.Errorf("warm report differs from cold:\n%s\nvs\n%s", a, b)
	}
}

// TestMergeRejectsEngineMismatch: shards swept under different engines
// must not merge — the summed wall/cache counters would be meaningless.
func TestMergeRejectsEngineMismatch(t *testing.T) {
	corpus := smallCorpus(t, 2)
	shard := func(sc []workload.Scenario, eng exec.Engine) *Report {
		t.Helper()
		rep, err := Run(Config{Scenarios: sc, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	pairs := [][2]exec.Engine{
		{exec.EngineCompile, exec.EngineWalk},
		{exec.EngineBytecode, exec.EngineWalk},
		{exec.EngineBytecode, exec.EngineCompile},
	}
	for _, pr := range pairs {
		a := shard(corpus[:1], pr[0])
		b := shard(corpus[1:], pr[1])
		if _, err := Merge([]*Report{a, b}); err == nil || !strings.Contains(err.Error(), "engine") {
			t.Fatalf("merge of %s/%s shards: %v, want engine mismatch error", pr[0], pr[1], err)
		}
	}
}

// TestMergeRejectsTuneCheckEngineMismatch: tuned shards cross-checked
// against different oracles (or not at all) carry incomparable
// tiered_checks counters and a meaningless merged tune_check_engine.
func TestMergeRejectsTuneCheckEngineMismatch(t *testing.T) {
	corpus := smallCorpus(t, 2)
	a, err := Run(Config{Scenarios: corpus[:1], Tune: true, TuneCheckEngine: exec.EngineWalk})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Scenarios: corpus[1:], Tune: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]*Report{a, b}); err == nil || !strings.Contains(err.Error(), "tune-check") {
		t.Fatalf("merge of mixed tune-check shards: %v, want tune-check mismatch error", err)
	}
}

// TestTieredTuningSweep: a tuned sweep with -tune-check-engine walk must
// re-check every adopted plan on the oracle, count those runs, and adopt
// exactly the plans an unchecked sweep adopts — the check is a proof
// obligation, never a behavioral fork.
func TestTieredTuningSweep(t *testing.T) {
	corpus := smallCorpus(t, 4)
	checked, err := Run(Config{Scenarios: corpus, Tune: true, TuneCheckEngine: exec.EngineWalk})
	if err != nil {
		t.Fatal(err)
	}
	if checked.TuneCheckEngine != string(exec.EngineWalk) {
		t.Fatalf("report tune_check_engine = %q, want %q", checked.TuneCheckEngine, exec.EngineWalk)
	}
	if checked.Summary.TieredChecks == 0 {
		t.Fatal("tiered sweep recorded zero oracle check runs")
	}
	plain, err := Run(Config{Scenarios: corpus, Tune: true})
	if err != nil {
		t.Fatal(err)
	}
	norm := func(r *Report) string {
		r.TuneCheckEngine = ""
		r.Summary.SweepWallNs = 0
		r.Summary.VariantsCompiled = 0
		r.Summary.CacheHits = 0
		r.Summary.TieredChecks = 0
		for i := range r.Scenarios {
			for j := range r.Scenarios[i].Tuned {
				r.Scenarios[i].Tuned[j].TieredChecks = 0
			}
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := norm(checked), norm(plain); a != b {
		t.Errorf("tiered checking changed the sweep:\n%s\nvs\n%s", a, b)
	}
	// A no-op check engine (the sweep engine itself) runs no checks.
	noop, err := Run(Config{Scenarios: corpus[:1], Tune: true, TuneCheckEngine: exec.Default})
	if err != nil {
		t.Fatal(err)
	}
	if noop.TuneCheckEngine != "" || noop.Summary.TieredChecks != 0 {
		t.Fatalf("self-check sweep recorded engine %q / %d checks, want none",
			noop.TuneCheckEngine, noop.Summary.TieredChecks)
	}
}

// TestSeedReproducible: the same seed yields the same corpus; a different
// seed yields different kernels (and the sweep still passes on them).
func TestSeedReproducible(t *testing.T) {
	a := workload.GenerateScenarios(workload.GenOptions{Seed: 42})
	b := workload.GenerateScenarios(workload.GenOptions{Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different corpora")
	}
	c := workload.GenerateScenarios(workload.GenOptions{Seed: 43})
	differ := false
	for i := range a {
		if a[i].Source != c[i].Source {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("different seeds produced identical kernel sources")
	}

	// A salted corpus must still pass the oracle (spot-check a prefix).
	rep, err := Run(Config{Scenarios: a[:3], Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Correct != 3 || rep.Summary.Errors != 0 {
		t.Fatalf("salted corpus failed:\n%s", rep.Table())
	}
}

// TestCorpusShape pins the acceptance-level properties of the default
// corpus: at least 20 scenarios, unique names, both message regimes, and
// every kernel family represented.
func TestCorpusShape(t *testing.T) {
	scenarios := workload.GenerateScenarios(workload.GenOptions{})
	if len(scenarios) < 20 {
		t.Fatalf("default corpus has %d scenarios, want ≥ 20", len(scenarios))
	}
	names := map[string]bool{}
	families := map[string]int{}
	regimes := map[string]int{}
	for _, sc := range scenarios {
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %s", sc.Name)
		}
		names[sc.Name] = true
		families[sc.Family]++
		regimes[sc.Regime]++
		if sc.NP < 2 {
			t.Errorf("%s: np=%d", sc.Name, sc.NP)
		}
	}
	for _, f := range []string{"direct", "inner3d", "indirect", "fft", "lu", "sort", "ragged", "xchg", "multi"} {
		if families[f] == 0 {
			t.Errorf("family %s missing from corpus", f)
		}
	}
	if regimes["eager"] == 0 || regimes["rendezvous"] == 0 {
		t.Errorf("corpus misses a message regime: %v", regimes)
	}
}

// TestWriteJSON checks the artifact round-trips with the expected schema.
func TestWriteJSON(t *testing.T) {
	rep, err := Run(Config{Scenarios: smallCorpus(t, 2), Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_harness.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema {
		t.Errorf("schema %q, want %q", back.Schema, Schema)
	}
	if len(back.Scenarios) != 2 {
		t.Errorf("%d scenarios in artifact, want 2", len(back.Scenarios))
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Error("artifact should end with a newline")
	}
}

// TestLeftoverScenariosExerciseStep3: the ragged family must actually take
// the §3.6 step-3 leftover path (K does not divide the tiled extent) and
// still pass the oracle end-to-end.
func TestLeftoverScenariosExerciseStep3(t *testing.T) {
	var ragged []workload.Scenario
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{}) {
		if sc.Family == "ragged" {
			ragged = append(ragged, sc)
		}
	}
	if len(ragged) < 3 {
		t.Fatalf("only %d ragged scenarios, want ≥ 3", len(ragged))
	}
	rep, err := Run(Config{Scenarios: ragged[:3], Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Correct != 3 || rep.Summary.Errors != 0 {
		t.Fatalf("ragged scenarios failed:\n%s", rep.Table())
	}
}

// TestTunedSweep: tuned mode attaches per-profile choices to every clean
// scenario, never loses to the fixed K, and fills the per-profile summary.
func TestTunedSweep(t *testing.T) {
	rep, err := Run(Config{Scenarios: smallCorpus(t, 3), Parallelism: 3, Tune: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Errors != 0 || rep.Summary.Correct != 3 {
		t.Fatalf("tuned sweep failed:\n%s", rep.Table())
	}
	for _, o := range rep.Scenarios {
		if len(o.Tuned) != len(o.Profiles) {
			t.Fatalf("%s: %d tuned entries for %d profiles", o.Name, len(o.Tuned), len(o.Profiles))
		}
		for i, tr := range o.Tuned {
			pr := o.Profiles[i]
			if tr.Profile != pr.Profile || tr.Offload != pr.Offload {
				t.Errorf("%s: tuned row %d mismatched profile metadata", o.Name, i)
			}
			if tr.Plan.Normalize().Skip {
				// An identity plan declines the transformation: no tile
				// size to report, and the tuned run is the original.
				if tr.ChosenK != 0 {
					t.Errorf("%s/%s: identity plan with chosen_k %d, want 0", o.Name, tr.Profile, tr.ChosenK)
				}
				if tr.TunedSpeedup != 1.0 {
					t.Errorf("%s/%s: identity plan with tuned speedup %.4f, want exactly 1.0", o.Name, tr.Profile, tr.TunedSpeedup)
				}
			} else if tr.ChosenK < 1 || tr.Plan.K != tr.ChosenK {
				t.Errorf("%s/%s: chosen plan %+v vs chosen_k %d", o.Name, tr.Profile, tr.Plan, tr.ChosenK)
			}
			if tr.TunedSpeedup < 1.0 {
				t.Errorf("%s/%s: tuned speedup %.4f below 1.0 — identity plan should have won",
					o.Name, tr.Profile, tr.TunedSpeedup)
			}
			if err := tr.Plan.Validate(); err != nil {
				t.Errorf("%s/%s: chosen plan invalid: %v", o.Name, tr.Profile, err)
			}
			if tr.TunedSpeedup+1e-12 < pr.Speedup {
				t.Errorf("%s/%s: tuned speedup %.4f below fixed %.4f",
					o.Name, tr.Profile, tr.TunedSpeedup, pr.Speedup)
			}
			if tr.Evaluations < 1 || tr.SearchSimNs <= 0 {
				t.Errorf("%s/%s: search cost not recorded (%d evals, %d sim ns)",
					o.Name, tr.Profile, tr.Evaluations, tr.SearchSimNs)
			}
		}
	}
	for _, ps := range rep.Summary.PerProfile {
		if ps.TunedGeomean <= 0 {
			t.Errorf("profile %s: tuned geomean missing", ps.Profile)
		}
		if ps.TunedGeomean+1e-12 < ps.Geomean {
			t.Errorf("profile %s: tuned geomean %.4f below fixed %.4f",
				ps.Profile, ps.TunedGeomean, ps.Geomean)
		}
	}
	if !strings.Contains(rep.Table(), "tuned plan") {
		t.Error("tuned table missing the chosen-plan column")
	}
}

// TestMergeShards: splitting a corpus into shards, sweeping each, and
// merging must reproduce the unsharded report byte for byte.
func TestMergeShards(t *testing.T) {
	corpus := smallCorpus(t, 6)
	whole, err := Run(Config{Scenarios: corpus, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	var shards []*Report
	for s := 0; s < 2; s++ {
		var part []workload.Scenario
		for i, sc := range corpus {
			if i%2 == s {
				part = append(part, sc)
			}
		}
		rep, err := Run(Config{Scenarios: part, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, rep)
	}
	// Merge in reverse order to prove the result is order-independent.
	merged, err := Merge([]*Report{shards[1], shards[0]})
	if err != nil {
		t.Fatal(err)
	}
	// Wall time and variant-store traffic are execution facts, not corpus
	// facts: the shards legitimately spend different wall time and hit
	// their stores differently than the unsharded sweep. Everything else
	// must agree byte for byte.
	for _, r := range []*Report{whole, merged} {
		r.Summary.SweepWallNs = 0
		r.Summary.VariantsCompiled = 0
		r.Summary.CacheHits = 0
		r.Summary.DiskHits = 0
	}
	a, _ := json.Marshal(whole)
	b, _ := json.Marshal(merged)
	if string(a) != string(b) {
		t.Errorf("merged report differs from the unsharded sweep:\n%s\nvs\n%s", a, b)
	}
}

// TestMergeRejections: overlapping shards and foreign schemas must fail
// loudly instead of silently double counting.
func TestMergeRejections(t *testing.T) {
	corpus := smallCorpus(t, 2)
	rep, err := Run(Config{Scenarios: corpus, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]*Report{rep, rep}); err == nil {
		t.Error("merging overlapping shards succeeded")
	}
	old := &Report{Schema: "repro/bench-harness/v2"}
	if _, err := Merge([]*Report{rep, old}); err == nil {
		t.Error("merging a v2 artifact succeeded")
	}
	if _, err := Merge(nil); err == nil {
		t.Error("merging nothing succeeded")
	}

	// Shards swept under different machine sets, seeds, or tune modes must
	// not fold into one aggregate.
	reshape := func(mutate func(*Outcome)) *Report {
		clone := *rep
		clone.Scenarios = append([]Outcome(nil), rep.Scenarios...)
		for i := range clone.Scenarios {
			o := &clone.Scenarios[i]
			o.Profiles = append([]ProfileRun(nil), o.Profiles...) // unshare
			o.Index += len(rep.Scenarios)                         // disjoint indices
			mutate(o)
		}
		return &clone
	}
	otherMachines := reshape(func(o *Outcome) {
		for i := range o.Profiles {
			o.Profiles[i].Profile = "hpc-rdma-2019"
		}
	})
	if _, err := Merge([]*Report{rep, otherMachines}); err == nil {
		t.Error("merging shards with different machine sets succeeded")
	}
	otherSeed := reshape(func(o *Outcome) { o.Seed = 7 })
	if _, err := Merge([]*Report{rep, otherSeed}); err == nil {
		t.Error("merging shards with different corpus seeds succeeded")
	}
	tunedShard := reshape(func(o *Outcome) {
		o.Tuned = []TunedRun{{Profile: o.Profiles[0].Profile, TunedSpeedup: 1.1, Plan: plan.Decision{K: 4}.Normalize()}}
	})
	if _, err := Merge([]*Report{rep, tunedShard}); err == nil {
		t.Error("merging tuned and untuned shards succeeded")
	}
}

// TestReadJSONSchemaGate: ReadJSON refuses artifacts from other schema
// versions.
func TestReadJSONSchemaGate(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(Config{Scenarios: smallCorpus(t, 1), Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.json")
	if err := rep.WriteJSON(good); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(good); err != nil {
		t.Errorf("ReadJSON rejected a fresh artifact: %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"repro/bench-harness/v2"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(bad); err == nil {
		t.Error("ReadJSON accepted a v2 artifact")
	}
}

// TestNonDefaultPlanCounting: summarize must count tuned rows whose plan
// differs from the fixed decision in a non-K knob — and only those.
func TestNonDefaultPlanCounting(t *testing.T) {
	fixed := plan.Decision{K: 8}.Normalize()
	outcomes := []Outcome{
		{
			Name: "a", Identical: true, Plan: fixed,
			Profiles: []ProfileRun{{Profile: "p", Speedup: 1.2}},
			Tuned: []TunedRun{
				{Profile: "p", TunedSpeedup: 1.3, Plan: plan.Decision{K: 4}.Normalize()},                                   // K-only change
				{Profile: "q", TunedSpeedup: 1.4, Plan: plan.Decision{K: 8, Wait: plan.WaitPerTile}.Normalize()},           // non-K knob
				{Profile: "r", TunedSpeedup: 1.1, Plan: plan.Decision{K: 2, Interchange: plan.InterchangeOff}.Normalize()}, // both
			},
		},
	}
	s := summarize(outcomes)
	if s.NonDefaultPlans != 2 {
		t.Errorf("NonDefaultPlans = %d, want 2", s.NonDefaultPlans)
	}
}

// TestSummaryCountsNonPositiveSpeedups: a zero-speedup pathology must be
// counted and surfaced, not silently dropped from the geomean.
func TestSummaryCountsNonPositiveSpeedups(t *testing.T) {
	outcomes := []Outcome{
		{
			Name: "a", Identical: true,
			Profiles: []ProfileRun{
				{Profile: "p", Offload: true, Speedup: 2.0},
				{Profile: "q", Speedup: 0},
			},
		},
		{
			Name: "b", Identical: true,
			Profiles: []ProfileRun{
				{Profile: "p", Offload: true, Speedup: 0.5},
				{Profile: "q", Speedup: -1},
			},
			Tuned: []TunedRun{{Profile: "q", TunedSpeedup: 0}},
		},
	}
	s := summarize(outcomes)
	if s.NonPositive != 3 {
		t.Errorf("NonPositive = %d, want 3", s.NonPositive)
	}
	var p, q *ProfileSummary
	for i := range s.PerProfile {
		switch s.PerProfile[i].Profile {
		case "p":
			p = &s.PerProfile[i]
		case "q":
			q = &s.PerProfile[i]
		}
	}
	if p == nil || q == nil {
		t.Fatalf("per-profile rows missing: %+v", s.PerProfile)
	}
	if !p.Offload || q.Offload {
		t.Error("offload flags not carried into the per-profile summary")
	}
	if p.NonPositive != 0 || q.NonPositive != 3 {
		t.Errorf("per-profile NonPositive = %d/%d, want 0/3", p.NonPositive, q.NonPositive)
	}
	if p.Geomean != 1.0 {
		t.Errorf("geomean(2.0, 0.5) = %v, want 1.0", p.Geomean)
	}
}

// TestBrokenScenarioIsolated: one unparseable scenario must not take down
// the sweep — it is reported in its outcome and the summary.
func TestBrokenScenarioIsolated(t *testing.T) {
	good := smallCorpus(t, 1)
	bad := workload.Scenario{
		Name: "broken/unparseable", Family: "direct",
		Source: "this is not fortran", NP: 4, K: 2,
	}
	rep, err := Run(Config{Scenarios: []workload.Scenario{bad, good[0]}, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Errors != 1 {
		t.Fatalf("errors = %d, want 1:\n%s", rep.Summary.Errors, rep.Table())
	}
	if rep.Scenarios[0].Err == "" {
		t.Error("broken scenario has no recorded error")
	}
	if rep.Summary.Correct != 1 {
		t.Errorf("good scenario should still pass (correct=%d)", rep.Summary.Correct)
	}
}

// TestMultiSiteScenarios: the multi family runs the full differential
// chain — every site rewritten, every receive array compared — and passes
// the oracle end-to-end.
func TestMultiSiteScenarios(t *testing.T) {
	var multi []workload.Scenario
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{}) {
		if sc.Family == "multi" {
			multi = append(multi, sc)
		}
	}
	if len(multi) < 3 {
		t.Fatalf("only %d multi scenarios, want ≥ 3", len(multi))
	}
	sites := map[int]bool{}
	for _, sc := range multi {
		sites[sc.Sites] = true
		if len(sc.Arrays) != sc.Sites {
			t.Errorf("%s: %d oracle arrays for %d sites", sc.Name, len(sc.Arrays), sc.Sites)
		}
	}
	if !sites[2] || !sites[3] {
		t.Errorf("multi family should cover 2- and 3-site programs, got %v", sites)
	}
	rep, err := Run(Config{Scenarios: multi, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Correct != len(multi) || rep.Summary.Errors != 0 {
		t.Fatalf("multi scenarios failed:\n%s", rep.Table())
	}
	for _, o := range rep.Scenarios {
		want := 2
		if strings.HasPrefix(o.Name, "multi/s3/") {
			want = 3
		}
		if o.TransformedSites != want {
			t.Errorf("%s: %d sites transformed, want %d", o.Name, o.TransformedSites, want)
		}
	}
}

// TestTunedMultiSiteDivergence: a tuned sweep over a multi scenario must
// record per-site decisions and seeds in the artifact, count divergent
// plans in the summary, and show the divergent plan beating the best
// uniform plan on at least one machine.
func TestTunedMultiSiteDivergence(t *testing.T) {
	var multi *workload.Scenario
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{}) {
		if sc.Family == "multi" {
			sc := sc
			multi = &sc
			break
		}
	}
	if multi == nil {
		t.Fatal("no multi scenario")
	}
	rep, err := Run(Config{Scenarios: []workload.Scenario{*multi}, Parallelism: 1, Tune: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Errors != 0 || rep.Summary.Correct != 1 {
		t.Fatalf("tuned multi sweep failed:\n%s", rep.Table())
	}
	if rep.Summary.DivergentPlans == 0 {
		t.Fatalf("no divergent plans recorded:\n%s", rep.Table())
	}
	beats := false
	for _, tr := range rep.Scenarios[0].Tuned {
		if len(tr.Sites) != multi.Sites {
			t.Errorf("%s: tuned row has %d sites, want %d", tr.Profile, len(tr.Sites), multi.Sites)
		}
		for _, ts := range tr.Sites {
			if len(ts.SeedKs) == 0 {
				t.Errorf("%s/%s: no per-site analytic seeds in the artifact", tr.Profile, ts.Site)
			}
		}
		if tr.Divergent {
			if tr.UniformSpeedup <= 0 {
				t.Errorf("%s: divergent row missing the uniform baseline", tr.Profile)
			}
			if tr.TunedSpeedup > tr.UniformSpeedup {
				beats = true
			}
		}
	}
	if !beats {
		t.Error("no divergent tuned plan strictly beat the best uniform plan")
	}
	if !strings.Contains(rep.Table(), "|") {
		t.Error("table does not render the divergent per-site plan")
	}
}

// TestDivergentPlanCounting: summarize counts tuned rows flagged divergent
// — and only those.
func TestDivergentPlanCounting(t *testing.T) {
	fixed := plan.Decision{K: 8}.Normalize()
	outcomes := []Outcome{
		{
			Name: "a", Identical: true, Plan: fixed,
			Profiles: []ProfileRun{{Profile: "p", Speedup: 1.2}},
			Tuned: []TunedRun{
				{Profile: "p", TunedSpeedup: 1.3, Plan: plan.Decision{K: 4}.Normalize(), Divergent: true},
				{Profile: "q", TunedSpeedup: 1.4, Plan: plan.Decision{K: 8}.Normalize()},
			},
		},
	}
	s := summarize(outcomes)
	if s.DivergentPlans != 1 {
		t.Errorf("DivergentPlans = %d, want 1", s.DivergentPlans)
	}
}

// TestMergeRejectsReportLevelMachineMismatch: shards swept under different
// machine sets must be rejected from the report-level machine list even
// when their outcomes cannot be compared (e.g. every scenario errored).
func TestMergeRejectsReportLevelMachineMismatch(t *testing.T) {
	corpus := smallCorpus(t, 2)
	a, err := Run(Config{Scenarios: corpus[:1], Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// An all-errored shard carries no outcome profile rows — only the
	// report-level machine list can catch the mismatch.
	b := &Report{
		Schema:   Schema,
		Engine:   a.Engine,
		Machines: []string{"hpc-rdma-2019"},
		Scenarios: []Outcome{{
			Index: corpus[1].Index, Name: corpus[1].Name, Seed: corpus[1].Seed,
			Err: "synthetic failure",
		}},
	}
	if _, err := Merge([]*Report{a, b}); err == nil {
		t.Fatal("merge accepted shards with mismatched machine sets")
	} else if !strings.Contains(err.Error(), "machine set") {
		t.Errorf("unhelpful merge error: %v", err)
	}
	// Same machines merge fine.
	b.Machines = append([]string(nil), a.Machines...)
	if _, err := Merge([]*Report{a, b}); err != nil {
		t.Fatalf("merge rejected matching shards: %v", err)
	}
}

// TestCompareBaseline: the regression gate compares per-profile geomeans
// over the scenario intersection, fails on regressions beyond tolerance,
// and passes on improvements or in-tolerance noise.
func TestCompareBaseline(t *testing.T) {
	mk := func(speedups map[string][]float64) *Report {
		// speedups: profile -> per-scenario speedup (index i = scenario i).
		var n int
		for _, v := range speedups {
			n = len(v)
		}
		rep := &Report{Schema: Schema}
		for i := 0; i < n; i++ {
			o := Outcome{Index: i, Name: fmt.Sprintf("s%d", i), Identical: true}
			for _, prof := range []string{"p", "q"} {
				v, ok := speedups[prof]
				if !ok {
					continue
				}
				o.Profiles = append(o.Profiles, ProfileRun{Profile: prof, Speedup: v[i]})
			}
			rep.Scenarios = append(rep.Scenarios, o)
		}
		rep.Summary = summarize(rep.Scenarios)
		return rep
	}
	base := mk(map[string][]float64{"p": {1.2, 1.1, 1.3}, "q": {1.0, 1.0, 1.0}})

	// Identical sweep: clean.
	if v := CompareBaseline(mk(map[string][]float64{"p": {1.2, 1.1, 1.3}, "q": {1.0, 1.0, 1.0}}), base, 0.01); len(v) != 0 {
		t.Errorf("identical sweep flagged: %v", v)
	}
	// A clear regression on p fails.
	if v := CompareBaseline(mk(map[string][]float64{"p": {1.0, 0.9, 1.0}, "q": {1.0, 1.0, 1.0}}), base, 0.01); len(v) == 0 {
		t.Error("regression passed the gate")
	} else if !strings.Contains(v[0], "p") {
		t.Errorf("violation does not name the profile: %v", v)
	}
	// Improvements never fail.
	if v := CompareBaseline(mk(map[string][]float64{"p": {2.0, 2.0, 2.0}, "q": {1.5, 1.5, 1.5}}), base, 0.01); len(v) != 0 {
		t.Errorf("improvement flagged: %v", v)
	}
	// Within-tolerance noise passes (0.5% drop, 1% tolerance).
	if v := CompareBaseline(mk(map[string][]float64{"p": {1.194, 1.095, 1.293}, "q": {1.0, 1.0, 1.0}}), base, 0.01); len(v) != 0 {
		t.Errorf("in-tolerance drift flagged: %v", v)
	}
	// A truncated sweep gates on the intersection only: scenario 0 alone,
	// with the baseline's own value, passes even though the other rows are
	// missing.
	trunc := mk(map[string][]float64{"p": {1.2}, "q": {1.0}})
	if v := CompareBaseline(trunc, base, 0.01); len(v) != 0 {
		t.Errorf("truncated sweep flagged: %v", v)
	}
	// Disjoint corpora are an explicit error, not a silent pass.
	disjoint := mk(map[string][]float64{"p": {1.2}, "q": {1.0}})
	for i := range disjoint.Scenarios {
		disjoint.Scenarios[i].Name = "other"
	}
	if v := CompareBaseline(disjoint, base, 0.01); len(v) == 0 {
		t.Error("disjoint corpora passed silently")
	}
}

// TestCompareBaselineMissingProfile: a profile present in the baseline but
// absent from the sweep must be a violation, not a vacuous pass.
func TestCompareBaselineMissingProfile(t *testing.T) {
	base := &Report{Schema: Schema, Scenarios: []Outcome{{
		Index: 0, Name: "s0", Identical: true,
		Profiles: []ProfileRun{{Profile: "p", Speedup: 1.2}, {Profile: "q", Speedup: 1.1}},
	}}}
	base.Summary = summarize(base.Scenarios)
	cur := &Report{Schema: Schema, Scenarios: []Outcome{{
		Index: 0, Name: "s0", Identical: true,
		Profiles: []ProfileRun{{Profile: "p", Speedup: 1.2}},
	}}}
	cur.Summary = summarize(cur.Scenarios)
	v := CompareBaseline(cur, base, 0.01)
	if len(v) == 0 {
		t.Fatal("dropping profile q from the sweep passed the baseline gate")
	}
	if !strings.Contains(v[0], "q") {
		t.Errorf("violation does not name the missing profile: %v", v)
	}
	// A profile newly added to the sweep (absent from the baseline) is fine.
	if v := CompareBaseline(base, cur, 0.01); len(v) != 0 {
		t.Errorf("newly added profile flagged: %v", v)
	}
}

// TestVerifiedSweep: a verify-enabled tuned sweep statically verifies every
// variant it measured (fixed, each tuner candidate, and each chosen plan)
// with zero findings, and a second sweep over the same on-disk store skips
// every re-verification via the durable ledger.
func TestVerifiedSweep(t *testing.T) {
	dir := t.TempDir()
	corpus := smallCorpus(t, 4)
	sweep := func() *Report {
		t.Helper()
		store, err := exec.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := session.New(session.Options{Store: store})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(Config{Scenarios: corpus, Tune: true, Verify: true, Session: sess})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Summary.Errors != 0 || rep.Summary.Correct != len(corpus) {
			t.Fatalf("sweep failed:\n%s", rep.Table())
		}
		return rep
	}

	cold := sweep()
	if cold.Summary.VerifiedVariants == 0 {
		t.Fatal("verify-enabled sweep verified nothing")
	}
	if cold.Summary.VerifyFailures != 0 {
		t.Fatalf("static verifier flagged %d findings on a clean sweep", cold.Summary.VerifyFailures)
	}
	if cold.Summary.VerifyWallNs <= 0 {
		t.Error("verify wall time not recorded")
	}
	for _, o := range cold.Scenarios {
		if len(o.VerifyFailures) != 0 {
			t.Errorf("%s: unexpected verify failures: %v", o.Name, o.VerifyFailures)
		}
	}

	warm := sweep()
	if warm.Summary.VerifiedVariants != 0 {
		t.Errorf("warm sweep re-verified %d variants, want 0 (ledger must carry verdicts)",
			warm.Summary.VerifiedVariants)
	}
	if warm.Summary.VerifySkipped < cold.Summary.VerifiedVariants {
		t.Errorf("warm sweep skipped %d verifications, want ≥ %d (every cold verification)",
			warm.Summary.VerifySkipped, cold.Summary.VerifiedVariants)
	}
}

// TestVerifyOffLeavesReportUntouched: with Verify unset, none of the verify
// counters appear in the serialized report — the committed benchmark JSON
// must stay byte-identical.
func TestVerifyOffLeavesReportUntouched(t *testing.T) {
	rep, err := Run(Config{Scenarios: smallCorpus(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"verified_variants", "verify_skipped", "verify_failures", "verify_wall_ns"} {
		if strings.Contains(string(b), field) {
			t.Errorf("verify-off report serializes %q", field)
		}
	}
}
