package harness

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/tune"
	"repro/internal/verify"
)

// verifyTracker runs the static verification tier over every variant the
// sweep touches, deduplicated by content hash. When the session's variant
// store keeps a VerifyLedger (both built-in stores do), clean hashes are
// recorded there — so a second sweep in the same process, or a warm process
// sharing an on-disk store, re-verifies nothing. Safe for concurrent use by
// the sweep workers.
type verifyTracker struct {
	ledger exec.VerifyLedger // nil when the store keeps none

	mu       sync.Mutex
	local    map[exec.Key]bool // dedupe fallback (and single-flight window)
	verified int64
	skipped  int64
	failures int64
	wallNs   int64
}

func newVerifyTracker(store exec.VariantStore) *verifyTracker {
	vt := &verifyTracker{local: map[exec.Key]bool{}}
	if l, ok := store.(exec.VerifyLedger); ok {
		vt.ledger = l
	}
	return vt
}

// variantKey pairs the original source with the transformed output: the
// verifier's verdict is a function of exactly that pair (the report is
// deterministic given them), so the pair hash is the ledger unit.
func variantKey(orig, out string) exec.Key {
	return exec.KeyOf(orig + "\x00" + out)
}

// variant statically verifies one (program, plan) variant, at most once per
// content pair. It returns rendered diagnostics — nil when the variant is
// clean or its hash is already known clean.
func (vt *verifyTracker) variant(prog *core.Program, pl *plan.Plan, out string, rep *core.Report) []string {
	key := variantKey(prog.Source(), out)
	vt.mu.Lock()
	if vt.local[key] {
		vt.skipped++
		vt.mu.Unlock()
		return nil
	}
	if vt.ledger != nil && vt.ledger.Verified(key) {
		vt.local[key] = true
		vt.skipped++
		vt.mu.Unlock()
		return nil
	}
	vt.mu.Unlock()

	start := time.Now()
	diags := verify.Variant(prog, pl, out, rep)
	elapsed := time.Since(start).Nanoseconds()

	vt.mu.Lock()
	defer vt.mu.Unlock()
	vt.wallNs += elapsed
	if vt.local[key] {
		// A racing worker finished the same pair first; fold this attempt
		// into the skip column so counters stay one-per-variant.
		vt.skipped++
		return nil
	}
	if len(diags) == 0 {
		vt.verified++
		vt.local[key] = true
		if vt.ledger != nil {
			vt.ledger.MarkVerified(key)
		}
		return nil
	}
	vt.failures += int64(len(diags))
	vt.local[key] = true // a failing variant is reported once, not per sighting
	out2 := make([]string, len(diags))
	for i, d := range diags {
		out2[i] = d.String()
	}
	return out2
}

// apply replays a plan through core.Apply (memoized, so regeneration is
// free for plans the sweep already materialized) and verifies the output.
func (vt *verifyTracker) apply(prog *core.Program, pl *plan.Plan) []string {
	out, rep, err := core.Apply(prog, pl)
	if err != nil {
		// An unappliable plan never produced a variant; there is nothing to
		// verify statically (the tuner already surfaced the error).
		return nil
	}
	return vt.variant(prog, pl, out, rep)
}

// choice verifies every variant a tuning choice touched: each measured
// candidate plan plus the chosen plan itself.
func (vt *verifyTracker) choice(prog *core.Program, c tune.Choice) []string {
	var fails []string
	if c.Plan == nil {
		return nil
	}
	for _, cd := range c.Candidates {
		if len(cd.Decisions) != len(c.Sites) {
			continue
		}
		cand := *c.Plan
		cand.Sites = make([]plan.SitePlan, len(c.Sites))
		for i := range c.Sites {
			cand.Sites[i] = plan.SitePlan{Site: c.Sites[i].Site, Decision: cd.Decisions[i]}
		}
		fails = append(fails, vt.apply(prog, &cand)...)
	}
	fails = append(fails, vt.apply(prog, c.Plan)...)
	return fails
}

// counts snapshots the tracker's counters.
func (vt *verifyTracker) counts() (verified, skipped, failures, wallNs int64) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return vt.verified, vt.skipped, vt.failures, vt.wallNs
}
