package harness

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// shardByParity splits a corpus into even/odd-index shards and sweeps each
// with the given verify setting (fresh private sessions, so the verify
// counters are cold and nonzero when enabled).
func shardByParity(t *testing.T, corpus []workload.Scenario, verify bool) []*Report {
	t.Helper()
	var shards []*Report
	for s := 0; s < 2; s++ {
		var part []workload.Scenario
		for _, sc := range corpus {
			if sc.Index%2 == s {
				part = append(part, sc)
			}
		}
		rep, err := Run(Config{Scenarios: part, Tune: true, Verify: verify, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, rep)
	}
	return shards
}

// TestMergeSumsVerifyCounters: the PR 8 verify counters must fold across
// shards by summation — a merged artifact claiming fewer verified variants
// than its shards proved would make the fleet's merged verdict unsound.
func TestMergeSumsVerifyCounters(t *testing.T) {
	corpus := smallCorpus(t, 4)
	shards := shardByParity(t, corpus, true)
	merged, err := Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Verify {
		t.Error("merged report dropped the verify flag")
	}
	var wantVerified, wantSkipped, wantFailures, wantWall int64
	for _, s := range shards {
		if !s.Verify {
			t.Fatal("verify-enabled shard did not record the verify flag")
		}
		if s.Summary.VerifiedVariants == 0 {
			t.Fatal("cold verify-enabled shard verified nothing; the summation assertion would be vacuous")
		}
		wantVerified += s.Summary.VerifiedVariants
		wantSkipped += s.Summary.VerifySkipped
		wantFailures += s.Summary.VerifyFailures
		wantWall += s.Summary.VerifyWallNs
	}
	got := merged.Summary
	if got.VerifiedVariants != wantVerified {
		t.Errorf("merged verified_variants = %d, want %d (sum of shards)", got.VerifiedVariants, wantVerified)
	}
	if got.VerifySkipped != wantSkipped {
		t.Errorf("merged verify_skipped = %d, want %d (sum of shards)", got.VerifySkipped, wantSkipped)
	}
	if got.VerifyFailures != wantFailures {
		t.Errorf("merged verify_failures = %d, want %d (sum of shards)", got.VerifyFailures, wantFailures)
	}
	if got.VerifyWallNs != wantWall {
		t.Errorf("merged verify_wall_ns = %d, want %d (sum of shards)", got.VerifyWallNs, wantWall)
	}
}

// TestMergeRejectsMixedVerify: folding a verify-on shard with a verify-off
// shard must fail loudly — the summed counters would cover only part of the
// corpus while the merged artifact reads as fully checked.
func TestMergeRejectsMixedVerify(t *testing.T) {
	corpus := smallCorpus(t, 4)
	var reports []*Report
	for s := 0; s < 2; s++ {
		var part []workload.Scenario
		for _, sc := range corpus {
			if sc.Index%2 == s {
				part = append(part, sc)
			}
		}
		rep, err := Run(Config{Scenarios: part, Tune: true, Verify: s == 0, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	_, err := Merge(reports)
	if err == nil {
		t.Fatal("merging verify-on and verify-off shards succeeded")
	}
	if !strings.Contains(err.Error(), "verify") {
		t.Errorf("mixed-verify rejection does not name the cause: %v", err)
	}
	// Either order must be rejected (the first report seeds the expectation).
	if _, err := Merge([]*Report{reports[1], reports[0]}); err == nil {
		t.Fatal("merging verify-off and verify-on shards succeeded")
	}
}
