// Package harness runs the differential conformance-and-evaluation sweep:
// for every scenario in a corpus it parses the Fortran kernel, executes the
// untransformed program on the simulated cluster, applies the pre-push
// transformation, executes the transformed program identically, asserts
// bit-identical observable results (the correctness oracle of the paper's
// §4 protocol), and reports simulated makespans under each machine model.
// The sweep is the repository's regression gate: a transformation change
// that corrupts results or loses the overlap gain fails it.
package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/session"
	"repro/internal/tune"
	"repro/internal/workload"
)

// Schema identifies the JSON artifact layout. v7 adds the bytecode
// execution tier and tiered tuning: the report records the tune-check
// engine (`tune_check_engine`, the oracle that differentially re-checked
// every adopted plan), tuned rows carry `tiered_checks` (oracle runs spent
// on that row), and the summary sums them. v6 made "don't transform" a
// first-class per-site decision (skip decisions, skipped_sites /
// identity_plans counters; tuned speedup ≥ 1.0 by construction); v5 added
// the execution-engine fields (engine, variants_compiled, cache_hits,
// sweep_wall_ns) on top of the v4 per-site tuning fields.
const Schema = "repro/bench-harness/v7"

// Config parameterizes one sweep.
type Config struct {
	// Scenarios is the corpus; empty means the full generated default
	// corpus (workload.GenerateScenarios with seed 0).
	Scenarios []workload.Scenario
	// Machines are the machine models to measure under; empty means the
	// default sweep set (plan.DefaultSweep): the paper's pair —
	// mpich-tcp-2005 (host progress) and mpich-gm-2005 (NIC offload) —
	// plus the modern hpc-rdma-2019 stack. A scenario's Costs override
	// applies on top of each machine's CPU cost model.
	Machines []plan.Machine
	// Parallelism bounds the sweep scheduler's concurrent workers; <= 0
	// means GOMAXPROCS. Work items are (scenario, machine) pairs; results
	// are collected by index, so reports are deterministic regardless of
	// the value.
	Parallelism int
	// Arrays names the observable arrays the correctness oracle compares
	// (besides all printed output); empty means {"ar"}, the receive array
	// every corpus kernel exposes. The send array is excluded because the
	// indirect transformation legally makes it dead (§3.4).
	Arrays []string
	// Tune enables the per-(scenario, machine) plan search: next to the
	// fixed-K measurement, internal/tune picks the whole plan decision —
	// K, wait schedule, send order, interchange gate — and the outcome
	// records the chosen plan, the tuned speedup, and the search cost.
	Tune bool
	// TuneMaxMeasured caps measured candidates per (scenario, machine);
	// <= 0 selects tune.DefaultMaxMeasured.
	TuneMaxMeasured int
	// TuneKOnly restricts the search to the tile size (the historical
	// K-only tuner), for ablation sweeps.
	TuneKOnly bool
	// TuneCheckEngine, when non-empty, makes tuning tiered: candidates are
	// measured on the sweep engine, and only the original program and each
	// adopted plan are re-run on this engine (the walk oracle in CI),
	// requiring identical makespans and observables. Ignored when it names
	// the sweep engine itself.
	TuneCheckEngine exec.Engine
	// Verify enables the static verification tier: every (program, plan)
	// variant the sweep touches — the fixed variant, every measured tuner
	// candidate, and each chosen plan — is re-proven by the translation
	// validator and MPI schedule linter (internal/verify), no execution
	// involved. Verified variant hashes are recorded on the session store's
	// ledger (when it keeps one), so repeat sweeps — and warm processes
	// sharing an on-disk store — skip re-verification entirely. Findings
	// land in each scenario's verify_failures and the summary counters;
	// they do not mark the scenario errored (the dynamic oracle verdict
	// stays independent).
	Verify bool
	// Engine selects the execution engine: exec.EngineBytecode (default)
	// lowers each (program, plan) variant once into a register bytecode
	// program, exec.EngineCompile runs the closure mid-tier, and
	// exec.EngineWalk re-parses and tree-walks per run — the differential
	// oracle. Fast-tier artifacts are shared through the sweep session's
	// variant store.
	Engine exec.Engine
	// Session, when non-nil, supplies the variant store, plan memo, and
	// engine the sweep runs through — two sweeps sharing a session share
	// compiled variants (and, in tuned mode, memoized plans: the caller
	// owns the fingerprint-aliasing assumption that makes memoized plans
	// replayable). Nil gives each Run a private session (fresh in-memory
	// store, no cross-run memoization) — the historical behavior, and
	// what keeps concurrent sweeps in one process from sharing counters.
	// A non-empty Engine must agree with the session's.
	Session *session.Session
}

// ProfileRun is one (scenario, machine) differential measurement.
type ProfileRun struct {
	Profile    string  `json:"profile"`
	Offload    bool    `json:"offload"`
	OriginalNs int64   `json:"original_ns"` // untransformed makespan
	PrepushNs  int64   `json:"prepush_ns"`  // transformed makespan
	Speedup    float64 `json:"speedup"`     // original / prepush

	// Blocked time is the overlap story: pre-pushing converts per-rank
	// blocked (waiting) time into overlapped computation.
	OriginalBlockedNs int64 `json:"original_blocked_ns"` // avg per rank
	PrepushBlockedNs  int64 `json:"prepush_blocked_ns"`  // avg per rank

	OriginalMessages int64 `json:"original_messages"`
	PrepushMessages  int64 `json:"prepush_messages"`
	OriginalBytes    int64 `json:"original_bytes"`
	PrepushBytes     int64 `json:"prepush_bytes"`
}

// Outcome is one scenario's full differential result.
type Outcome struct {
	Index     int    `json:"index"` // position in the full corpus
	Name      string `json:"name"`
	Family    string `json:"family"`
	NP        int    `json:"np"`
	K         int64  `json:"k"`
	Seed      int64  `json:"seed"`
	PairBytes int64  `json:"pair_bytes"`
	Regime    string `json:"regime"` // eager | rendezvous

	// Plan is the uniform decision the fixed measurement replayed (built
	// from the scenario's K by the core.Options shim).
	Plan plan.Decision `json:"plan"`

	TransformedSites int  `json:"transformed_sites"`
	Interchanged     bool `json:"interchanged"`

	// Identical is the correctness oracle verdict: bit-identical printed
	// output and observable arrays under every machine.
	Identical bool   `json:"identical"`
	Mismatch  string `json:"mismatch,omitempty"`
	Err       string `json:"error,omitempty"`

	Profiles []ProfileRun `json:"profiles"`

	// Tuned holds the per-machine plan-search results (tuned mode only):
	// the chosen plan decision, tuned speedup, and search cost.
	Tuned []TunedRun `json:"tuned,omitempty"`

	// VerifyFailures holds the static verifier's findings against this
	// scenario's variants (verify mode only; empty means every variant
	// re-proved clean). One line per diagnostic, machine-readable code
	// first.
	VerifyFailures []string `json:"verify_failures,omitempty"`
}

// TunedRun is one (scenario, machine) plan-search result. Every candidate
// the search measured passed the same bit-identical oracle as the fixed-K
// run; the chosen plan is always at least as fast as the fixed K *and* as
// the original program (the identity plan — every site skipped — is always
// in the candidate set, so TunedSpeedup ≥ 1.0 by construction).
type TunedRun struct {
	Profile string `json:"profile"`
	Offload bool   `json:"offload"`
	// Plan is the first site's chosen decision — the whole plan for the
	// single-site kernels that dominate the corpus; Sites carries every
	// site's decision for multi-site programs.
	Plan         plan.Decision `json:"plan"`
	ChosenK      int64         `json:"chosen_k"`
	TunedSpeedup float64       `json:"tuned_speedup"`
	TunedNs      int64         `json:"tuned_prepush_ns"`
	FixedSpeedup float64       `json:"fixed_speedup"`
	// Sites are the per-site decisions and per-site analytic seeds of the
	// chosen plan, in program order.
	Sites []TunedSite `json:"sites,omitempty"`
	// Divergent marks a chosen plan whose sites do not all share one
	// decision; UniformSpeedup is the best measured speedup any uniform
	// plan achieved — the baseline a divergent plan had to beat.
	Divergent      bool    `json:"divergent,omitempty"`
	UniformSpeedup float64 `json:"best_uniform_speedup,omitempty"`
	// Search cost: measured pre-push runs and the simulated time they took.
	Evaluations int   `json:"evaluations"`
	SearchSimNs int64 `json:"search_sim_ns"`
	// TieredChecks counts the check-engine runs that re-proved this row's
	// original and adopted plan (tiered tuning only; 0 when off).
	TieredChecks int `json:"tiered_checks,omitempty"`
}

// TunedSite is one site's slice of a tuned plan: the chosen decision plus
// the analytic tile sizes the machine model seeded the site's search with.
type TunedSite struct {
	Site     string        `json:"site"`
	Decision plan.Decision `json:"decision"`
	SeedKs   []int64       `json:"seed_ks,omitempty"`
}

// skipCounts returns (skipped sites, total sites) of the chosen plan.
// Single-site rows that predate per-site entries fall back to the headline
// decision.
func (tr *TunedRun) skipCounts() (skips, sites int) {
	if len(tr.Sites) == 0 {
		if tr.Plan.Normalize().Skip {
			return 1, 1
		}
		return 0, 1
	}
	for _, ts := range tr.Sites {
		if ts.Decision.Normalize().Skip {
			skips++
		}
	}
	return skips, len(tr.Sites)
}

// Summary aggregates a sweep.
type Summary struct {
	Scenarios int `json:"scenarios"`
	Correct   int `json:"correct"` // scenarios passing the oracle
	Errors    int `json:"errors"`
	// GeomeanSpeedup maps machine name → geometric-mean original/prepush
	// makespan ratio over clean scenarios (error-free AND oracle-passing).
	GeomeanSpeedup map[string]float64 `json:"geomean_speedup"`
	// PerProfile carries the per-machine aggregates with the facts gates
	// need (the offload flag, tuned geomeans, pathology counters), sorted
	// by machine name.
	PerProfile []ProfileSummary `json:"per_profile"`
	// NonPositive counts (scenario, machine) measurements with a
	// non-positive speedup — a zero or negative makespan pathology. Such
	// entries are excluded from the geomeans but must fail the run: silently
	// dropping them would inflate the aggregate.
	NonPositive int `json:"non_positive_speedups"`
	// OffloadGained counts clean scenarios (once each) whose prepush run
	// is at least as fast as the original on some offload machine.
	OffloadGained int `json:"offload_gained"`
	// NonDefaultPlans counts tuned rows whose chosen plan differs from the
	// fixed decision in a non-K knob (wait schedule, send order, or
	// interchange gate) — the signal that the multi-knob search is finding
	// wins the K-only tuner could not.
	NonDefaultPlans int `json:"non_default_plans"`
	// DivergentPlans counts tuned rows whose chosen plan gives different
	// decisions to different MPI_ALLTOALL sites of one program — the signal
	// that the per-site search is finding wins no uniform plan can express.
	DivergentPlans int `json:"divergent_plans"`
	// SkippedSites counts per-site skip decisions across all tuned rows:
	// sites where the tuner concluded the paper's transformation should not
	// fire at all.
	SkippedSites int `json:"skipped_sites"`
	// IdentityPlans counts tuned rows whose chosen plan skips every site —
	// the whole program is best left untransformed on that machine. These
	// rows pin the tuned speedup at exactly 1.0 (the never-lose floor).
	IdentityPlans int `json:"identity_plans"`
	// VariantsCompiled and CacheHits are this sweep's traffic against the
	// session's compiled-variant store (zero under the walk engine):
	// variants new to the store vs. lookups served by an already-compiled
	// in-memory artifact. Merge sums them across shards.
	VariantsCompiled int64 `json:"variants_compiled"`
	CacheHits        int64 `json:"cache_hits"`
	// DiskHits counts lookups served from a persistent store's
	// checksum-valid on-disk entries (variants known from an earlier
	// process; re-lowered in memory but not new knowledge). Zero unless
	// the sweep session wraps an on-disk store.
	DiskHits int64 `json:"disk_hits,omitempty"`
	// SweepWallNs is the scheduler's wall-clock cost for this sweep (the
	// quantity the engine exists to shrink); merge sums shard walls.
	SweepWallNs int64 `json:"sweep_wall_ns"`
	// Static verification counters (verify mode only; omitted otherwise so
	// pre-verify artifacts stay byte-identical). VerifiedVariants counts
	// variants freshly re-proven this sweep; VerifySkipped counts variants
	// whose hash the store ledger already knew clean (a warm sweep re-
	// verifies nothing); VerifyFailures counts diagnostics across all
	// variants; VerifyWallNs is the verifier's wall-clock cost. Merge sums
	// all four.
	VerifiedVariants int64 `json:"verified_variants,omitempty"`
	VerifySkipped    int64 `json:"verify_skipped,omitempty"`
	VerifyFailures   int64 `json:"verify_failures,omitempty"`
	VerifyWallNs     int64 `json:"verify_wall_ns,omitempty"`
	// TieredChecks sums the tuned rows' check-engine runs (tiered tuning
	// only). It is the whole oracle bill of a tiered sweep: two runs per
	// adopted plan instead of one per measured candidate. Merge sums it.
	TieredChecks int64 `json:"tiered_checks,omitempty"`
}

// ProfileSummary is one machine's aggregate row.
type ProfileSummary struct {
	Profile string `json:"profile"`
	// Offload is taken from the measured machine runs, so gates can key on
	// the stack's capability instead of hard-coding machine names.
	Offload bool    `json:"offload"`
	Geomean float64 `json:"geomean_speedup"`
	// TunedGeomean is the geometric-mean tuned speedup (tuned mode only).
	TunedGeomean float64 `json:"tuned_geomean_speedup,omitempty"`
	// NonPositive counts this machine's non-positive speedup measurements.
	NonPositive int `json:"non_positive_speedups"`
	// OriginalBlockedFrac is the aggregate blocked share of the original
	// (untransformed) runs on this machine: the average per-rank blocked
	// time summed over clean scenarios, divided by the summed makespans.
	// It measures how much overlap the machine leaves on the table — the
	// raw material of the paper's transformation. Gates use it to tell
	// machines with reclaimable blocked time (where an offload stack must
	// show aggregate gain) from already-overlapped stacks like
	// hpc-rdma-2019, whose 100G wire drains the exchange faster than the
	// node computes (where only the no-harm and tuned-recovery bounds are
	// meaningful).
	OriginalBlockedFrac float64 `json:"original_blocked_frac"`
}

// Report is the sweep artifact (marshalled to BENCH_harness.json).
type Report struct {
	Schema string `json:"schema"`
	// Engine names the execution engine the sweep ran on ("bytecode",
	// "compile", or "walk"). Merge requires it to agree across shards:
	// mixing engines would make the summed wall/cache counters meaningless.
	Engine string `json:"engine,omitempty"`
	// TuneCheckEngine names the tiered-tuning check engine, when one re-
	// proved the adopted plans. Merge requires it to agree across shards
	// for the same reason as Engine: a summed tiered_checks counter over
	// shards whose plans were checked against different oracles (or not at
	// all) would misstate what the artifact proves.
	TuneCheckEngine string `json:"tune_check_engine,omitempty"`
	// Machines names the machine-model set the sweep ran under, in sweep
	// order. Merge requires it to agree across shards — an outcome-level
	// scan alone can miss a mismatch when a shard's scenarios all errored.
	Machines []string `json:"machines,omitempty"`
	// Verify records that the sweep ran the static verification tier.
	// Merge requires it to agree across shards: summing verify counters
	// over a mix of verify-on and verify-off shards would undercount the
	// corpus (a clean-looking merged artifact whose unverified half was
	// simply never checked). Omitted on verify-off reports so pre-verify
	// artifacts stay byte-identical.
	Verify    bool      `json:"verify,omitempty"`
	Scenarios []Outcome `json:"scenarios"`
	Summary   Summary   `json:"summary"`
}

// Run executes the sweep on the scheduler: work items are (scenario,
// machine) pairs drained by a worker pool — the fixed differential wave
// first, then (in tuned mode) the plan-search wave over the scenarios that
// passed the oracle. Results land in per-index slots, so the report is
// deterministic regardless of parallelism. The returned error covers only
// configuration problems; per-scenario failures are recorded in their
// Outcome (and in Summary) so one broken scenario cannot hide the rest of
// the corpus.
func Run(cfg Config) (*Report, error) {
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = workload.GenerateScenarios(workload.GenOptions{})
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("harness: empty corpus")
	}
	machines := cfg.Machines
	if len(machines) == 0 {
		machines = plan.DefaultSweep()
	}
	arrays := cfg.Arrays
	if len(arrays) == 0 {
		arrays = []string{"ar"}
	}
	sess := cfg.Session
	if sess == nil {
		// A private session per Run: fresh in-memory variant store, no
		// memoized plans. Concurrent sweeps in one process never share
		// counters — the old process-global cache (and its test-only
		// ResetCache escape hatch) is gone.
		var err error
		sess, err = session.New(session.Options{Engine: cfg.Engine})
		if err != nil {
			return nil, fmt.Errorf("harness: %v", err)
		}
	} else if cfg.Engine != "" && cfg.Engine != sess.Engine() {
		return nil, fmt.Errorf("harness: config engine %q disagrees with session engine %q",
			cfg.Engine, sess.Engine())
	}
	engine := sess.Engine()
	// Tiered tuning: resolve the check engine up front so a typo fails the
	// sweep before any work; a check engine naming the sweep engine itself
	// is a no-op (nothing to cross-check).
	checkEngine := exec.Engine("")
	if cfg.Tune && cfg.TuneCheckEngine != "" {
		ce, err := exec.ParseEngine(string(cfg.TuneCheckEngine))
		if err != nil {
			return nil, fmt.Errorf("harness: tune check engine: %v", err)
		}
		if ce != engine {
			checkEngine = ce
		}
	}
	cfg.TuneCheckEngine = checkEngine
	// Plans are memoized across queries only through an explicit shared
	// session: a caller wiring one in accepts that fingerprint-equal
	// (scenario, machine) pairs replay each other's plans. Default sweeps
	// tune every pair from scratch, so the committed artifact never
	// depends on the aliasing assumption.
	memoPlans := cfg.Session != nil
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	wallStart := time.Now()
	storeBefore := sess.Store().Stats()

	var vt *verifyTracker
	if cfg.Verify {
		vt = newVerifyTracker(sess.Store())
	}

	states := make([]*scenarioState, len(scenarios))
	for i, sc := range scenarios {
		states[i] = newScenarioState(sc, machines, arrays, sess, memoPlans, vt)
	}

	nm := len(machines)
	// Wave 1: fixed differential measurements, one item per
	// scenario×machine. The first worker to touch a scenario prepares it
	// (analyze + fixed-plan apply) under a sync.Once.
	runTasks(par, len(states)*nm, func(ti int) {
		st := states[ti/nm]
		st.prepare()
		st.runMachine(ti % nm)
	})
	// Wave 2: the tuned plan search, again one item per scenario×machine,
	// skipping scenarios that errored or failed the oracle (their fixed
	// rows already tell the story).
	if cfg.Tune {
		runTasks(par, len(states)*nm, func(ti int) {
			states[ti/nm].tuneMachine(ti%nm, cfg)
		})
	}

	outcomes := make([]Outcome, len(states))
	for i, st := range states {
		outcomes[i] = st.assemble(cfg.Tune)
	}

	rep := &Report{Schema: Schema, Engine: string(engine),
		TuneCheckEngine: string(checkEngine), Verify: cfg.Verify, Scenarios: outcomes}
	for _, m := range machines {
		rep.Machines = append(rep.Machines, m.Name)
	}
	rep.Summary = summarize(outcomes)
	delta := sess.Store().Stats().Sub(storeBefore)
	rep.Summary.VariantsCompiled = delta.Compiled
	rep.Summary.CacheHits = delta.Hits
	rep.Summary.DiskHits = delta.DiskHits
	rep.Summary.SweepWallNs = time.Since(wallStart).Nanoseconds()
	if vt != nil {
		rep.Summary.VerifiedVariants, rep.Summary.VerifySkipped,
			rep.Summary.VerifyFailures, rep.Summary.VerifyWallNs = vt.counts()
	}
	return rep, nil
}

// runTasks drains n work items through a pool of par workers.
func runTasks(par, n int, fn func(i int)) {
	if par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// machinesFor overlays the scenario's cost-model override (if any) onto the
// sweep's machine models.
func machinesFor(sc workload.Scenario, machines []plan.Machine) []plan.Machine {
	if sc.Costs == nil {
		return machines
	}
	out := make([]plan.Machine, len(machines))
	for i, m := range machines {
		m.Costs = *sc.Costs
		out[i] = m
	}
	return out
}

// scenarioState carries one scenario through the scheduler: shared
// preparation (analysis, the fixed-plan variant) plus per-machine result
// slots filled concurrently and assembled deterministically.
type scenarioState struct {
	sc       workload.Scenario
	machines []plan.Machine
	arrays   []string
	sess     *session.Session
	runner   exec.Runner
	// memoPlans gates the plan memo for wave 2 (only explicit shared
	// sessions memoize plans across queries).
	memoPlans bool
	// verify, when non-nil, is the sweep-wide static verification tracker;
	// verifyFixed holds the fixed variant's findings, verifyTuned the
	// per-machine tuned-search findings.
	verify      *verifyTracker
	verifyFixed []string
	verifyTuned [][]string

	fixedPlan *plan.Plan

	prepOnce         sync.Once
	prog             *core.Program
	transformed      string
	transformedSites int
	interchanged     bool
	prepErr          string

	// Per-machine slots (indexed like machines).
	profiles []ProfileRun
	runErr   []string
	mismatch []string
	tuned    []*TunedRun
	tuneErr  []string
}

func newScenarioState(sc workload.Scenario, machines []plan.Machine, arrays []string, sess *session.Session, memoPlans bool, vt *verifyTracker) *scenarioState {
	// A scenario naming its own observable arrays (multi-site kernels have
	// one receive array per exchange) overrides the sweep default.
	if len(sc.Arrays) > 0 {
		arrays = sc.Arrays
	}
	return &scenarioState{
		sc:          sc,
		machines:    machinesFor(sc, machines),
		arrays:      arrays,
		sess:        sess,
		runner:      sess.Runner(),
		memoPlans:   memoPlans,
		verify:      vt,
		verifyTuned: make([][]string, len(machines)),
		fixedPlan:   core.Options{K: sc.K}.Plan(),
		profiles:    make([]ProfileRun, len(machines)),
		runErr:      make([]string, len(machines)),
		mismatch:    make([]string, len(machines)),
		tuned:       make([]*TunedRun, len(machines)),
		tuneErr:     make([]string, len(machines)),
	}
}

// prepare analyzes the scenario and applies the fixed plan, once. The
// analysis goes through the session so a shared session reuses programs
// (and their plan-key Apply memos) across sweeps.
func (st *scenarioState) prepare() {
	st.prepOnce.Do(func() {
		prog, err := st.sess.Analyze(st.sc.Source, 0)
		if err != nil {
			st.prepErr = fmt.Sprintf("analyze: %v", err)
			return
		}
		transformed, rep, err := core.Apply(prog, st.fixedPlan)
		if err != nil {
			st.prepErr = fmt.Sprintf("apply: %v", err)
			return
		}
		if rep.TransformedCount() == 0 {
			st.prepErr = fmt.Sprintf("transform did not fire: %s", rep.FirstRejection())
			return
		}
		st.prog = prog
		st.transformed = transformed
		st.transformedSites = rep.TransformedCount()
		st.interchanged = rep.AnyInterchanged()
		if st.verify != nil {
			st.verifyFixed = st.verify.variant(prog, st.fixedPlan, transformed, rep)
		}
	})
}

// runMachine executes the fixed differential measurement for one machine.
func (st *scenarioState) runMachine(mi int) {
	if st.prepErr != "" {
		return
	}
	m := st.machines[mi]
	var results [2]*interp.Result
	var times [2]netsim.Time
	var blocked [2]netsim.Time
	var msgs, bytes [2]int64
	for vi, text := range []string{st.sc.Source, st.transformed} {
		res, err := st.runner.Run(text, st.sc.NP, m.Costs, m.Profile)
		if err != nil {
			st.runErr[mi] = fmt.Sprintf("run %s variant %d: %v", m.Name, vi, err)
			return
		}
		results[vi] = res
		times[vi] = res.Elapsed()
		_, b := res.AvgRankTimes()
		blocked[vi] = b
		msgs[vi] = res.Stats.Messages
		bytes[vi] = res.Stats.Bytes
	}
	pr := ProfileRun{
		Profile: m.Name, Offload: m.Profile.Offload,
		OriginalNs: int64(times[0]), PrepushNs: int64(times[1]),
		OriginalBlockedNs: int64(blocked[0]), PrepushBlockedNs: int64(blocked[1]),
		OriginalMessages: msgs[0], PrepushMessages: msgs[1],
		OriginalBytes: bytes[0], PrepushBytes: bytes[1],
	}
	if times[1] > 0 {
		pr.Speedup = float64(times[0]) / float64(times[1])
	}
	st.profiles[mi] = pr
	if same, why := interp.SameObservable(results[0], results[1], st.arrays...); !same {
		st.mismatch[mi] = fmt.Sprintf("%s: %s", m.Name, why)
	}
}

// clean reports whether the scenario prepared, ran, and passed the oracle
// on every machine — the precondition for tuning it.
func (st *scenarioState) clean() bool {
	if st.prepErr != "" {
		return false
	}
	for mi := range st.machines {
		if st.runErr[mi] != "" || st.mismatch[mi] != "" {
			return false
		}
	}
	return true
}

// tuneMachine runs the plan search for one machine (wave 2).
func (st *scenarioState) tuneMachine(mi int, cfg Config) {
	if !st.clean() {
		return
	}
	m := st.machines[mi]
	opts := tune.Options{MaxMeasured: cfg.TuneMaxMeasured, Arrays: st.arrays,
		KOnly: cfg.TuneKOnly, Engine: st.sess.Engine(), Store: st.sess.Store(),
		CheckEngine: cfg.TuneCheckEngine}
	if st.memoPlans {
		opts.Memo = st.sess.Memo()
	}
	choices, err := tune.Tune(
		tune.Input{Source: st.sc.Source, Program: st.prog, NP: st.sc.NP, FixedK: st.sc.K,
			Machines: []plan.Machine{m}},
		opts,
	)
	if err != nil {
		st.tuneErr[mi] = fmt.Sprintf("tune: %v", err)
		return
	}
	c := choices[0]
	tr := &TunedRun{
		Profile: c.Machine, Offload: c.Offload,
		Plan: c.Chosen, ChosenK: c.Chosen.K,
		TunedSpeedup: c.Speedup, TunedNs: c.PrepushNs,
		FixedSpeedup: c.FixedSpeedup,
		Divergent:    c.Divergent, UniformSpeedup: c.UniformSpeedup,
		Evaluations: c.Evaluations, SearchSimNs: c.SearchSimNs,
		TieredChecks: c.TieredChecks,
	}
	for _, s := range c.Sites {
		tr.Sites = append(tr.Sites, TunedSite{
			Site: s.Site, Decision: s.Decision, SeedKs: s.SeedKs,
		})
	}
	st.tuned[mi] = tr
	if st.verify != nil {
		st.verifyTuned[mi] = st.verify.choice(st.prog, c)
	}
}

// assemble folds the slots into the scenario's Outcome, deterministically:
// machine rows in sweep order, the first error (in machine order) winning.
func (st *scenarioState) assemble(tunedMode bool) Outcome {
	out := Outcome{
		Index: st.sc.Index, Name: st.sc.Name, Family: st.sc.Family, NP: st.sc.NP,
		K: st.sc.K, Seed: st.sc.Seed, PairBytes: st.sc.PairBytes, Regime: st.sc.Regime,
		Plan: st.fixedPlan.Default,
	}
	if st.prepErr != "" {
		out.Err = st.prepErr
		return out
	}
	for mi := range st.machines {
		if st.runErr[mi] != "" {
			out.Err = st.runErr[mi]
			return out
		}
	}
	out.TransformedSites = st.transformedSites
	out.Interchanged = st.interchanged
	out.Profiles = append(out.Profiles, st.profiles...)
	out.Identical = true
	for mi := range st.machines {
		if st.mismatch[mi] != "" {
			out.Identical = false
			out.Mismatch = st.mismatch[mi]
			break
		}
	}
	if tunedMode && out.Identical {
		for mi := range st.machines {
			if st.tuneErr[mi] != "" {
				// A failed search fails the scenario (matching the
				// historical single-call behavior): the fixed rows stay,
				// tuned rows are dropped.
				out.Err = st.tuneErr[mi]
				out.Tuned = nil
				return out
			}
			if st.tuned[mi] != nil {
				out.Tuned = append(out.Tuned, *st.tuned[mi])
			}
		}
	}
	if st.verify != nil {
		out.VerifyFailures = append(out.VerifyFailures, st.verifyFixed...)
		for mi := range st.machines {
			out.VerifyFailures = append(out.VerifyFailures, st.verifyTuned[mi]...)
		}
	}
	return out
}

// Merge folds sharded sweep reports into one, deterministically: outcomes
// are reordered by corpus index (ties by name), the summary is recomputed
// from the union, and inconsistent shards are rejected — overlapping
// corpus indices, foreign schemas, or shards swept under different
// machine sets, corpus seeds, or tune modes (any of which would make the
// recomputed aggregates silently meaningless).
func Merge(reports []*Report) (*Report, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("harness: nothing to merge")
	}
	var outcomes []Outcome
	machineSet := ""
	engine := ""
	checkEngine := ""
	verifyMode := false
	var compiled, hits, diskHits, wall int64
	var vVerified, vSkipped, vFails, vWall int64
	for i, r := range reports {
		if r.Schema != Schema {
			return nil, fmt.Errorf("harness: merge input %d has schema %q, want %q — regenerate the shard with this binary", i, r.Schema, Schema)
		}
		// The report-level machine list catches mismatches even when every
		// scenario of a shard errored (no outcome rows to compare).
		ms := strings.Join(r.Machines, ",")
		if i == 0 {
			machineSet = ms
			engine = r.Engine
			checkEngine = r.TuneCheckEngine
			verifyMode = r.Verify
		} else {
			if ms != machineSet {
				return nil, fmt.Errorf("harness: merge input %d was swept under machine set [%s], want [%s] — shards must use identical -machines", i, ms, machineSet)
			}
			if r.Engine != engine {
				return nil, fmt.Errorf("harness: merge input %d was swept under engine %q, want %q — shards must use one -engine", i, r.Engine, engine)
			}
			if r.TuneCheckEngine != checkEngine {
				return nil, fmt.Errorf("harness: merge input %d was tune-checked against engine %q, want %q — shards must use one -tune-check-engine", i, r.TuneCheckEngine, checkEngine)
			}
			if r.Verify != verifyMode {
				return nil, fmt.Errorf("harness: merge input %d mixes -verify and verify-off shards — summed verify counters would silently undercount the corpus; re-sweep every shard with one -verify setting", i)
			}
		}
		compiled += r.Summary.VariantsCompiled
		hits += r.Summary.CacheHits
		diskHits += r.Summary.DiskHits
		wall += r.Summary.SweepWallNs
		vVerified += r.Summary.VerifiedVariants
		vSkipped += r.Summary.VerifySkipped
		vFails += r.Summary.VerifyFailures
		vWall += r.Summary.VerifyWallNs
		outcomes = append(outcomes, r.Scenarios...)
	}
	sort.SliceStable(outcomes, func(i, j int) bool {
		if outcomes[i].Index != outcomes[j].Index {
			return outcomes[i].Index < outcomes[j].Index
		}
		return outcomes[i].Name < outcomes[j].Name
	})
	machines, seed, tuned := "", int64(-1), false
	for i := range outcomes {
		o := &outcomes[i]
		if i > 0 && o.Index == outcomes[i-1].Index {
			return nil, fmt.Errorf("harness: merge saw corpus index %d twice (%s and %s) — overlapping shards?",
				o.Index, outcomes[i-1].Name, o.Name)
		}
		if seed == -1 {
			seed = o.Seed
		} else if o.Seed != seed {
			return nil, fmt.Errorf("harness: merge mixes corpus seeds %d and %d (%s)", seed, o.Seed, o.Name)
		}
		if o.Err != "" {
			continue // an errored outcome carries no machine rows
		}
		var names []string
		for _, pr := range o.Profiles {
			names = append(names, pr.Profile)
		}
		ms := strings.Join(names, ",")
		if machines == "" {
			machines, tuned = ms, len(o.Tuned) > 0
			continue
		}
		if ms != machines {
			return nil, fmt.Errorf("harness: merge mixes machine sets [%s] and [%s] (%s)", machines, ms, o.Name)
		}
		if (len(o.Tuned) > 0) != tuned {
			return nil, fmt.Errorf("harness: merge mixes tuned and untuned shards (%s)", o.Name)
		}
	}
	rep := &Report{Schema: Schema, Engine: engine, TuneCheckEngine: checkEngine,
		Machines: reports[0].Machines, Verify: verifyMode, Scenarios: outcomes}
	rep.Summary = summarize(outcomes)
	rep.Summary.VariantsCompiled = compiled
	rep.Summary.CacheHits = hits
	rep.Summary.DiskHits = diskHits
	rep.Summary.SweepWallNs = wall
	rep.Summary.VerifiedVariants = vVerified
	rep.Summary.VerifySkipped = vSkipped
	rep.Summary.VerifyFailures = vFails
	rep.Summary.VerifyWallNs = vWall
	return rep, nil
}

// ErrSchema marks an artifact whose schema does not match this binary's —
// callers can errors.Is it to distinguish a stale artifact from a corrupt
// one and explain how to regenerate.
var ErrSchema = errors.New("artifact schema mismatch")

// ReadJSON loads a report artifact and checks its schema. A foreign schema
// returns an error wrapping ErrSchema rather than a zero-valued report, so
// a pre-v6 artifact can never be silently compared as zeros.
func ReadJSON(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q: %w", path, rep.Schema, Schema, ErrSchema)
	}
	return &rep, nil
}

// summarize folds outcomes into the aggregate verdicts.
func summarize(outcomes []Outcome) Summary {
	s := Summary{Scenarios: len(outcomes), GeomeanSpeedup: map[string]float64{}}
	type agg struct {
		offload             bool
		logSum, tunedLogSum float64
		cnt, tunedCnt       int
		nonPositive         int
		origNs, blockedNs   float64
	}
	aggs := map[string]*agg{}
	aggFor := func(name string, offload bool) *agg {
		a := aggs[name]
		if a == nil {
			a = &agg{offload: offload}
			aggs[name] = a
		}
		return a
	}
	for _, o := range outcomes {
		if o.Err != "" {
			s.Errors++
			continue
		}
		if !o.Identical {
			// A scenario that failed the oracle contributes nothing to the
			// performance aggregates: a transformation that corrupts
			// results must not inflate the reported overlap gain.
			continue
		}
		s.Correct++
		gained := false
		for _, pr := range o.Profiles {
			a := aggFor(pr.Profile, pr.Offload)
			a.origNs += float64(pr.OriginalNs)
			a.blockedNs += float64(pr.OriginalBlockedNs)
			if pr.Speedup > 0 {
				a.logSum += math.Log(pr.Speedup)
				a.cnt++
			} else {
				// A zero or negative speedup is a timing pathology. It is
				// excluded from the geomean, but counted and surfaced so it
				// fails the run instead of silently inflating the aggregate.
				a.nonPositive++
				s.NonPositive++
			}
			if pr.Offload && pr.Speedup >= 1.0 {
				gained = true
			}
		}
		for _, tr := range o.Tuned {
			a := aggFor(tr.Profile, tr.Offload)
			if tr.TunedSpeedup > 0 {
				a.tunedLogSum += math.Log(tr.TunedSpeedup)
				a.tunedCnt++
			} else {
				a.nonPositive++
				s.NonPositive++
			}
			if diffInNonKKnob(o.Plan, tr.Plan) {
				s.NonDefaultPlans++
			}
			if tr.Divergent {
				s.DivergentPlans++
			}
			skips, sites := tr.skipCounts()
			s.SkippedSites += skips
			if sites > 0 && skips == sites {
				s.IdentityPlans++
			}
			s.TieredChecks += int64(tr.TieredChecks)
		}
		if gained {
			s.OffloadGained++
		}
	}
	var names []string
	for name := range aggs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := aggs[name]
		ps := ProfileSummary{Profile: name, Offload: a.offload, NonPositive: a.nonPositive}
		if a.origNs > 0 {
			ps.OriginalBlockedFrac = a.blockedNs / a.origNs
		}
		if a.cnt > 0 {
			ps.Geomean = math.Exp(a.logSum / float64(a.cnt))
			s.GeomeanSpeedup[name] = ps.Geomean
		}
		if a.tunedCnt > 0 {
			ps.TunedGeomean = math.Exp(a.tunedLogSum / float64(a.tunedCnt))
		}
		s.PerProfile = append(s.PerProfile, ps)
	}
	return s
}

// diffInNonKKnob reports whether two decisions disagree beyond the tile
// size.
func diffInNonKKnob(a, b plan.Decision) bool {
	a, b = a.Normalize(), b.Normalize()
	return a.Wait != b.Wait || a.SendOrder != b.SendOrder ||
		a.Interchange != b.Interchange ||
		a.InterchangeMinBlockBytes != b.InterchangeMinBlockBytes
}

// WriteJSON writes the report artifact (pretty-printed, trailing newline).
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Table renders the per-scenario results as an aligned text table, machines
// sorted as configured, scenarios in corpus order. In tuned mode two extra
// columns show the chosen plan and the tuned speedup.
func (r *Report) Table() string {
	tuned := false
	for _, o := range r.Scenarios {
		if len(o.Tuned) > 0 {
			tuned = true
			break
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %-10s %6s %5s  %-14s %12s %12s %8s",
		"scenario", "regime", "np", "K", "machine", "original", "prepush", "speedup")
	if tuned {
		fmt.Fprintf(&sb, " %-20s %7s", "tuned plan", "tuned")
	}
	fmt.Fprintf(&sb, "  %s\n", "oracle")
	for _, o := range r.Scenarios {
		if o.Err != "" {
			fmt.Fprintf(&sb, "%-34s %-10s %6d %5d  ERROR: %s\n", o.Name, o.Regime, o.NP, o.K, o.Err)
			continue
		}
		verdict := "identical"
		if !o.Identical {
			verdict = "MISMATCH: " + o.Mismatch
		}
		for i, pr := range o.Profiles {
			name, regime := o.Name, o.Regime
			v := verdict
			if i > 0 {
				name, regime, v = "", "", ""
			}
			fmt.Fprintf(&sb, "%-34s %-10s %6d %5d  %-14s %12s %12s %8.2f",
				name, regime, o.NP, o.K, pr.Profile,
				netsim.Time(pr.OriginalNs), netsim.Time(pr.PrepushNs), pr.Speedup)
			if tuned {
				if tr := o.tunedFor(pr.Profile); tr != nil {
					fmt.Fprintf(&sb, " %-20s %7.2f", describeTuned(tr), tr.TunedSpeedup)
				} else {
					fmt.Fprintf(&sb, " %-20s %7s", "-", "-")
				}
			}
			fmt.Fprintf(&sb, "  %s\n", v)
		}
	}
	fmt.Fprintf(&sb, "\n%d scenarios, %d identical, %d errors\n",
		r.Summary.Scenarios, r.Summary.Correct, r.Summary.Errors)
	if r.Engine != "" {
		fmt.Fprintf(&sb, "engine %s: %d variant(s) compiled, %d cache hit(s)",
			r.Engine, r.Summary.VariantsCompiled, r.Summary.CacheHits)
		if r.Summary.DiskHits > 0 {
			fmt.Fprintf(&sb, ", %d disk hit(s)", r.Summary.DiskHits)
		}
		fmt.Fprintf(&sb, ", sweep wall %s\n", netsim.Time(r.Summary.SweepWallNs))
	}
	if r.Summary.NonPositive > 0 {
		fmt.Fprintf(&sb, "WARNING: %d non-positive speedup measurement(s) excluded from geomeans\n",
			r.Summary.NonPositive)
	}
	if r.Summary.NonDefaultPlans > 0 {
		fmt.Fprintf(&sb, "%d tuned plan(s) differ from the default in a non-K knob\n",
			r.Summary.NonDefaultPlans)
	}
	if r.Summary.DivergentPlans > 0 {
		fmt.Fprintf(&sb, "%d tuned plan(s) diverge across sites\n", r.Summary.DivergentPlans)
	}
	if r.Summary.SkippedSites > 0 {
		fmt.Fprintf(&sb, "%d site decision(s) skip the transformation (%d identity plan(s))\n",
			r.Summary.SkippedSites, r.Summary.IdentityPlans)
	}
	if r.TuneCheckEngine != "" {
		fmt.Fprintf(&sb, "tiered tuning: %d adopted-plan check run(s) on engine %s\n",
			r.Summary.TieredChecks, r.TuneCheckEngine)
	}
	for _, ps := range r.Summary.PerProfile {
		fmt.Fprintf(&sb, "geomean speedup %-14s %.3f", ps.Profile, ps.Geomean)
		if ps.TunedGeomean > 0 {
			fmt.Fprintf(&sb, "   tuned %.3f", ps.TunedGeomean)
		}
		if ps.Offload {
			fmt.Fprintf(&sb, "   (offload)")
		}
		fmt.Fprintf(&sb, "\n")
	}
	return sb.String()
}

// describeTuned renders a tuned row's chosen plan: the single decision for
// uniform plans, the per-site decisions joined with "|" for divergent ones.
func describeTuned(tr *TunedRun) string {
	if !tr.Divergent || len(tr.Sites) == 0 {
		return describePlan(tr.Plan)
	}
	parts := make([]string, len(tr.Sites))
	for i, ts := range tr.Sites {
		parts[i] = describePlan(ts.Decision)
	}
	return strings.Join(parts, "|")
}

// describePlan renders a decision compactly for the table, e.g.
// "K=8", "K=8+per-tile+seq+int:off", or "K=skip" for a declined site (so a
// mixed multi-site plan reads "K=skip|K=64").
func describePlan(d plan.Decision) string {
	d = d.Normalize()
	if d.Skip {
		return "K=skip"
	}
	s := fmt.Sprintf("K=%d", d.K)
	if d.Wait == plan.WaitPerTile {
		s += "+per-tile"
	}
	if d.SendOrder == plan.SendSequential {
		s += "+seq"
	}
	switch d.Interchange {
	case plan.InterchangeOn:
		s += "+int:on"
	case plan.InterchangeOff:
		s += "+int:off"
	}
	return s
}

// tunedFor returns the tuned result for the named machine, or nil.
func (o *Outcome) tunedFor(profile string) *TunedRun {
	for i := range o.Tuned {
		if o.Tuned[i].Profile == profile {
			return &o.Tuned[i]
		}
	}
	return nil
}
