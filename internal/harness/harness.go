// Package harness runs the differential conformance-and-evaluation sweep:
// for every scenario in a corpus it parses the Fortran kernel, executes the
// untransformed program on the simulated cluster, applies the pre-push
// transformation, executes the transformed program identically, asserts
// bit-identical observable results (the correctness oracle of the paper's
// §4 protocol), and reports simulated makespans under each network profile.
// The sweep is the repository's regression gate: a transformation change
// that corrupts results or loses the overlap gain fails it.
package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
	"repro/internal/tune"
	"repro/internal/workload"
)

// Schema identifies the JSON artifact layout. v2 adds the tuned-mode fields
// (per-scenario chosen K and tuned speedup, per-profile summary rows with
// the offload flag) and the non-positive-speedup counters.
const Schema = "repro/bench-harness/v2"

// Config parameterizes one sweep.
type Config struct {
	// Scenarios is the corpus; empty means the full generated default
	// corpus (workload.GenerateScenarios with seed 0).
	Scenarios []workload.Scenario
	// Profiles are the network stacks to measure under; empty means the
	// paper's pair: MPICH-TCP (host progress) and MPICH-GM (NIC offload).
	Profiles []netsim.Profile
	// Parallelism bounds concurrent scenario workers; <= 0 means
	// GOMAXPROCS. Results are deterministic regardless of the value: each
	// scenario is self-contained and results are collected by index.
	Parallelism int
	// Arrays names the observable arrays the correctness oracle compares
	// (besides all printed output); empty means {"ar"}, the receive array
	// every corpus kernel exposes. The send array is excluded because the
	// indirect transformation legally makes it dead (§3.4).
	Arrays []string
	// Tune enables the per-(scenario, profile) tile-size search: next to
	// the fixed-K measurement, internal/tune picks K automatically and the
	// outcome records the chosen K, the tuned speedup, and the search cost.
	Tune bool
	// TuneMaxMeasured caps measured candidates per (scenario, profile);
	// <= 0 selects tune.DefaultMaxMeasured.
	TuneMaxMeasured int
}

// ProfileRun is one (scenario, profile) differential measurement.
type ProfileRun struct {
	Profile    string  `json:"profile"`
	Offload    bool    `json:"offload"`
	OriginalNs int64   `json:"original_ns"` // untransformed makespan
	PrepushNs  int64   `json:"prepush_ns"`  // transformed makespan
	Speedup    float64 `json:"speedup"`     // original / prepush

	// Blocked time is the overlap story: pre-pushing converts per-rank
	// blocked (waiting) time into overlapped computation.
	OriginalBlockedNs int64 `json:"original_blocked_ns"` // avg per rank
	PrepushBlockedNs  int64 `json:"prepush_blocked_ns"`  // avg per rank

	OriginalMessages int64 `json:"original_messages"`
	PrepushMessages  int64 `json:"prepush_messages"`
	OriginalBytes    int64 `json:"original_bytes"`
	PrepushBytes     int64 `json:"prepush_bytes"`
}

// Outcome is one scenario's full differential result.
type Outcome struct {
	Name      string `json:"name"`
	Family    string `json:"family"`
	NP        int    `json:"np"`
	K         int64  `json:"k"`
	Seed      int64  `json:"seed"`
	PairBytes int64  `json:"pair_bytes"`
	Regime    string `json:"regime"` // eager | rendezvous

	TransformedSites int  `json:"transformed_sites"`
	Interchanged     bool `json:"interchanged"`

	// Identical is the correctness oracle verdict: bit-identical printed
	// output and observable arrays under every profile.
	Identical bool   `json:"identical"`
	Mismatch  string `json:"mismatch,omitempty"`
	Err       string `json:"error,omitempty"`

	Profiles []ProfileRun `json:"profiles"`

	// Tuned holds the per-profile tile-size search results (tuned mode
	// only): chosen K, tuned speedup, and search cost.
	Tuned []TunedRun `json:"tuned,omitempty"`
}

// TunedRun is one (scenario, profile) auto-tuning result. Every candidate
// the search measured passed the same bit-identical oracle as the fixed-K
// run; the chosen K is always at least as fast as the fixed K.
type TunedRun struct {
	Profile      string  `json:"profile"`
	Offload      bool    `json:"offload"`
	ChosenK      int64   `json:"chosen_k"`
	TunedSpeedup float64 `json:"tuned_speedup"`
	TunedNs      int64   `json:"tuned_prepush_ns"`
	FixedSpeedup float64 `json:"fixed_speedup"`
	// Search cost: measured pre-push runs and the simulated time they took.
	Evaluations int   `json:"evaluations"`
	SearchSimNs int64 `json:"search_sim_ns"`
}

// Summary aggregates a sweep.
type Summary struct {
	Scenarios int `json:"scenarios"`
	Correct   int `json:"correct"` // scenarios passing the oracle
	Errors    int `json:"errors"`
	// GeomeanSpeedup maps profile name → geometric-mean original/prepush
	// makespan ratio over clean scenarios (error-free AND oracle-passing).
	GeomeanSpeedup map[string]float64 `json:"geomean_speedup"`
	// PerProfile carries the per-profile aggregates with the facts gates
	// need (the offload flag, tuned geomeans, pathology counters), sorted
	// by profile name.
	PerProfile []ProfileSummary `json:"per_profile"`
	// NonPositive counts (scenario, profile) measurements with a
	// non-positive speedup — a zero or negative makespan pathology. Such
	// entries are excluded from the geomeans but must fail the run: silently
	// dropping them would inflate the aggregate.
	NonPositive int `json:"non_positive_speedups"`
	// OffloadGained counts clean scenarios (once each) whose prepush run
	// is at least as fast as the original on some offload profile.
	OffloadGained int `json:"offload_gained"`
}

// ProfileSummary is one profile's aggregate row.
type ProfileSummary struct {
	Profile string `json:"profile"`
	// Offload is taken from the measured profile runs, so gates can key on
	// the stack's capability instead of hard-coding profile names.
	Offload bool    `json:"offload"`
	Geomean float64 `json:"geomean_speedup"`
	// TunedGeomean is the geometric-mean tuned speedup (tuned mode only).
	TunedGeomean float64 `json:"tuned_geomean_speedup,omitempty"`
	// NonPositive counts this profile's non-positive speedup measurements.
	NonPositive int `json:"non_positive_speedups"`
}

// Report is the sweep artifact (marshalled to BENCH_harness.json).
type Report struct {
	Schema    string    `json:"schema"`
	Scenarios []Outcome `json:"scenarios"`
	Summary   Summary   `json:"summary"`
}

// Run executes the sweep. The returned error covers only configuration
// problems; per-scenario failures are recorded in their Outcome (and in
// Summary) so one broken scenario cannot hide the rest of the corpus.
func Run(cfg Config) (*Report, error) {
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = workload.GenerateScenarios(workload.GenOptions{})
	}
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()}
	}
	arrays := cfg.Arrays
	if len(arrays) == 0 {
		arrays = []string{"ar"}
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(scenarios) {
		par = len(scenarios)
	}
	if par < 1 {
		return nil, fmt.Errorf("harness: empty corpus")
	}

	outcomes := make([]Outcome, len(scenarios))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i] = runScenario(scenarios[i], profiles, arrays, cfg)
			}
		}()
	}
	for i := range scenarios {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &Report{Schema: Schema, Scenarios: outcomes}
	rep.Summary = summarize(outcomes)
	return rep, nil
}

// runScenario executes the full differential chain for one scenario.
func runScenario(sc workload.Scenario, profiles []netsim.Profile, arrays []string, cfg Config) Outcome {
	out := Outcome{
		Name: sc.Name, Family: sc.Family, NP: sc.NP, K: sc.K, Seed: sc.Seed,
		PairBytes: sc.PairBytes, Regime: sc.Regime,
	}
	fail := func(format string, args ...interface{}) Outcome {
		out.Err = fmt.Sprintf(format, args...)
		return out
	}

	// 1. Transform (parse → analyze → rewrite → unparse).
	transformed, rep, err := core.Transform(sc.Source, core.Options{K: sc.K})
	if err != nil {
		return fail("transform: %v", err)
	}
	out.TransformedSites = rep.TransformedCount()
	out.Interchanged = rep.AnyInterchanged()
	if out.TransformedSites == 0 {
		return fail("transform did not fire: %s", rep.FirstRejection())
	}

	// 2–5. Run both variants under every profile; assert identical results.
	out.Identical = true
	for _, prof := range profiles {
		var results [2]*interp.Result
		var times [2]netsim.Time
		var blocked [2]netsim.Time
		var msgs, bytes [2]int64
		for vi, text := range []string{sc.Source, transformed} {
			prog, err := interp.Load(text)
			if err != nil {
				return fail("load %s variant %d: %v", prof.Name, vi, err)
			}
			if sc.Costs != nil {
				prog.Costs = *sc.Costs
			}
			res, err := prog.Run(sc.NP, prof)
			if err != nil {
				return fail("run %s variant %d: %v", prof.Name, vi, err)
			}
			results[vi] = res
			times[vi] = res.Elapsed()
			_, b := res.AvgRankTimes()
			blocked[vi] = b
			msgs[vi] = res.Stats.Messages
			bytes[vi] = res.Stats.Bytes
		}
		pr := ProfileRun{
			Profile: prof.Name, Offload: prof.Offload,
			OriginalNs: int64(times[0]), PrepushNs: int64(times[1]),
			OriginalBlockedNs: int64(blocked[0]), PrepushBlockedNs: int64(blocked[1]),
			OriginalMessages: msgs[0], PrepushMessages: msgs[1],
			OriginalBytes: bytes[0], PrepushBytes: bytes[1],
		}
		if times[1] > 0 {
			pr.Speedup = float64(times[0]) / float64(times[1])
		}
		out.Profiles = append(out.Profiles, pr)
		if same, why := interp.SameObservable(results[0], results[1], arrays...); !same {
			out.Identical = false
			if out.Mismatch == "" {
				out.Mismatch = fmt.Sprintf("%s: %s", prof.Name, why)
			}
		}
	}

	// Tuned mode: search K per profile next to the fixed-K measurement.
	if cfg.Tune && out.Identical {
		choices, err := tune.Tune(
			tune.Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Profiles: profiles},
			tune.Options{MaxMeasured: cfg.TuneMaxMeasured, Arrays: arrays, Costs: sc.Costs},
		)
		if err != nil {
			return fail("tune: %v", err)
		}
		for _, c := range choices {
			out.Tuned = append(out.Tuned, TunedRun{
				Profile: c.Profile, Offload: c.Offload,
				ChosenK: c.ChosenK, TunedSpeedup: c.Speedup, TunedNs: c.PrepushNs,
				FixedSpeedup: c.FixedSpeedup,
				Evaluations:  c.Evaluations, SearchSimNs: c.SearchSimNs,
			})
		}
	}
	return out
}

// summarize folds outcomes into the aggregate verdicts.
func summarize(outcomes []Outcome) Summary {
	s := Summary{Scenarios: len(outcomes), GeomeanSpeedup: map[string]float64{}}
	type agg struct {
		offload             bool
		logSum, tunedLogSum float64
		cnt, tunedCnt       int
		nonPositive         int
	}
	aggs := map[string]*agg{}
	aggFor := func(name string, offload bool) *agg {
		a := aggs[name]
		if a == nil {
			a = &agg{offload: offload}
			aggs[name] = a
		}
		return a
	}
	for _, o := range outcomes {
		if o.Err != "" {
			s.Errors++
			continue
		}
		if !o.Identical {
			// A scenario that failed the oracle contributes nothing to the
			// performance aggregates: a transformation that corrupts
			// results must not inflate the reported overlap gain.
			continue
		}
		s.Correct++
		gained := false
		for _, pr := range o.Profiles {
			a := aggFor(pr.Profile, pr.Offload)
			if pr.Speedup > 0 {
				a.logSum += math.Log(pr.Speedup)
				a.cnt++
			} else {
				// A zero or negative speedup is a timing pathology. It is
				// excluded from the geomean, but counted and surfaced so it
				// fails the run instead of silently inflating the aggregate.
				a.nonPositive++
				s.NonPositive++
			}
			if pr.Offload && pr.Speedup >= 1.0 {
				gained = true
			}
		}
		for _, tr := range o.Tuned {
			a := aggFor(tr.Profile, tr.Offload)
			if tr.TunedSpeedup > 0 {
				a.tunedLogSum += math.Log(tr.TunedSpeedup)
				a.tunedCnt++
			} else {
				a.nonPositive++
				s.NonPositive++
			}
		}
		if gained {
			s.OffloadGained++
		}
	}
	var names []string
	for name := range aggs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := aggs[name]
		ps := ProfileSummary{Profile: name, Offload: a.offload, NonPositive: a.nonPositive}
		if a.cnt > 0 {
			ps.Geomean = math.Exp(a.logSum / float64(a.cnt))
			s.GeomeanSpeedup[name] = ps.Geomean
		}
		if a.tunedCnt > 0 {
			ps.TunedGeomean = math.Exp(a.tunedLogSum / float64(a.tunedCnt))
		}
		s.PerProfile = append(s.PerProfile, ps)
	}
	return s
}

// WriteJSON writes the report artifact (pretty-printed, trailing newline).
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Table renders the per-scenario results as an aligned text table, profiles
// sorted as configured, scenarios in corpus order. In tuned mode two extra
// columns show the chosen K and the tuned speedup.
func (r *Report) Table() string {
	tuned := false
	for _, o := range r.Scenarios {
		if len(o.Tuned) > 0 {
			tuned = true
			break
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %-10s %6s %5s  %-10s %12s %12s %8s",
		"scenario", "regime", "np", "K", "profile", "original", "prepush", "speedup")
	if tuned {
		fmt.Fprintf(&sb, " %7s %7s", "tunedK", "tuned")
	}
	fmt.Fprintf(&sb, "  %s\n", "oracle")
	for _, o := range r.Scenarios {
		if o.Err != "" {
			fmt.Fprintf(&sb, "%-34s %-10s %6d %5d  ERROR: %s\n", o.Name, o.Regime, o.NP, o.K, o.Err)
			continue
		}
		verdict := "identical"
		if !o.Identical {
			verdict = "MISMATCH: " + o.Mismatch
		}
		for i, pr := range o.Profiles {
			name, regime := o.Name, o.Regime
			v := verdict
			if i > 0 {
				name, regime, v = "", "", ""
			}
			fmt.Fprintf(&sb, "%-34s %-10s %6d %5d  %-10s %12s %12s %8.2f",
				name, regime, o.NP, o.K, pr.Profile,
				netsim.Time(pr.OriginalNs), netsim.Time(pr.PrepushNs), pr.Speedup)
			if tuned {
				if tr := o.tunedFor(pr.Profile); tr != nil {
					fmt.Fprintf(&sb, " %7d %7.2f", tr.ChosenK, tr.TunedSpeedup)
				} else {
					fmt.Fprintf(&sb, " %7s %7s", "-", "-")
				}
			}
			fmt.Fprintf(&sb, "  %s\n", v)
		}
	}
	fmt.Fprintf(&sb, "\n%d scenarios, %d identical, %d errors\n",
		r.Summary.Scenarios, r.Summary.Correct, r.Summary.Errors)
	if r.Summary.NonPositive > 0 {
		fmt.Fprintf(&sb, "WARNING: %d non-positive speedup measurement(s) excluded from geomeans\n",
			r.Summary.NonPositive)
	}
	for _, ps := range r.Summary.PerProfile {
		fmt.Fprintf(&sb, "geomean speedup %-10s %.3f", ps.Profile, ps.Geomean)
		if ps.TunedGeomean > 0 {
			fmt.Fprintf(&sb, "   tuned %.3f", ps.TunedGeomean)
		}
		if ps.Offload {
			fmt.Fprintf(&sb, "   (offload)")
		}
		fmt.Fprintf(&sb, "\n")
	}
	return sb.String()
}

// tunedFor returns the tuned result for the named profile, or nil.
func (o *Outcome) tunedFor(profile string) *TunedRun {
	for i := range o.Tuned {
		if o.Tuned[i].Profile == profile {
			return &o.Tuned[i]
		}
	}
	return nil
}
