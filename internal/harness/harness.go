// Package harness runs the differential conformance-and-evaluation sweep:
// for every scenario in a corpus it parses the Fortran kernel, executes the
// untransformed program on the simulated cluster, applies the pre-push
// transformation, executes the transformed program identically, asserts
// bit-identical observable results (the correctness oracle of the paper's
// §4 protocol), and reports simulated makespans under each network profile.
// The sweep is the repository's regression gate: a transformation change
// that corrupts results or loses the overlap gain fails it.
package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// Schema identifies the JSON artifact layout.
const Schema = "repro/bench-harness/v1"

// Config parameterizes one sweep.
type Config struct {
	// Scenarios is the corpus; empty means the full generated default
	// corpus (workload.GenerateScenarios with seed 0).
	Scenarios []workload.Scenario
	// Profiles are the network stacks to measure under; empty means the
	// paper's pair: MPICH-TCP (host progress) and MPICH-GM (NIC offload).
	Profiles []netsim.Profile
	// Parallelism bounds concurrent scenario workers; <= 0 means
	// GOMAXPROCS. Results are deterministic regardless of the value: each
	// scenario is self-contained and results are collected by index.
	Parallelism int
	// Arrays names the observable arrays the correctness oracle compares
	// (besides all printed output); empty means {"ar"}, the receive array
	// every corpus kernel exposes. The send array is excluded because the
	// indirect transformation legally makes it dead (§3.4).
	Arrays []string
}

// ProfileRun is one (scenario, profile) differential measurement.
type ProfileRun struct {
	Profile    string  `json:"profile"`
	Offload    bool    `json:"offload"`
	OriginalNs int64   `json:"original_ns"` // untransformed makespan
	PrepushNs  int64   `json:"prepush_ns"`  // transformed makespan
	Speedup    float64 `json:"speedup"`     // original / prepush

	// Blocked time is the overlap story: pre-pushing converts per-rank
	// blocked (waiting) time into overlapped computation.
	OriginalBlockedNs int64 `json:"original_blocked_ns"` // avg per rank
	PrepushBlockedNs  int64 `json:"prepush_blocked_ns"`  // avg per rank

	OriginalMessages int64 `json:"original_messages"`
	PrepushMessages  int64 `json:"prepush_messages"`
	OriginalBytes    int64 `json:"original_bytes"`
	PrepushBytes     int64 `json:"prepush_bytes"`
}

// Outcome is one scenario's full differential result.
type Outcome struct {
	Name      string `json:"name"`
	Family    string `json:"family"`
	NP        int    `json:"np"`
	K         int64  `json:"k"`
	Seed      int64  `json:"seed"`
	PairBytes int64  `json:"pair_bytes"`
	Regime    string `json:"regime"` // eager | rendezvous

	TransformedSites int  `json:"transformed_sites"`
	Interchanged     bool `json:"interchanged"`

	// Identical is the correctness oracle verdict: bit-identical printed
	// output and observable arrays under every profile.
	Identical bool   `json:"identical"`
	Mismatch  string `json:"mismatch,omitempty"`
	Err       string `json:"error,omitempty"`

	Profiles []ProfileRun `json:"profiles"`
}

// Summary aggregates a sweep.
type Summary struct {
	Scenarios int `json:"scenarios"`
	Correct   int `json:"correct"` // scenarios passing the oracle
	Errors    int `json:"errors"`
	// GeomeanSpeedup maps profile name → geometric-mean original/prepush
	// makespan ratio over clean scenarios (error-free AND oracle-passing).
	GeomeanSpeedup map[string]float64 `json:"geomean_speedup"`
	// OffloadGained counts clean scenarios (once each) whose prepush run
	// is at least as fast as the original on some offload profile.
	OffloadGained int `json:"offload_gained"`
}

// Report is the sweep artifact (marshalled to BENCH_harness.json).
type Report struct {
	Schema    string    `json:"schema"`
	Scenarios []Outcome `json:"scenarios"`
	Summary   Summary   `json:"summary"`
}

// Run executes the sweep. The returned error covers only configuration
// problems; per-scenario failures are recorded in their Outcome (and in
// Summary) so one broken scenario cannot hide the rest of the corpus.
func Run(cfg Config) (*Report, error) {
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = workload.GenerateScenarios(workload.GenOptions{})
	}
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()}
	}
	arrays := cfg.Arrays
	if len(arrays) == 0 {
		arrays = []string{"ar"}
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(scenarios) {
		par = len(scenarios)
	}
	if par < 1 {
		return nil, fmt.Errorf("harness: empty corpus")
	}

	outcomes := make([]Outcome, len(scenarios))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i] = runScenario(scenarios[i], profiles, arrays)
			}
		}()
	}
	for i := range scenarios {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &Report{Schema: Schema, Scenarios: outcomes}
	rep.Summary = summarize(outcomes)
	return rep, nil
}

// runScenario executes the full differential chain for one scenario.
func runScenario(sc workload.Scenario, profiles []netsim.Profile, arrays []string) Outcome {
	out := Outcome{
		Name: sc.Name, Family: sc.Family, NP: sc.NP, K: sc.K, Seed: sc.Seed,
		PairBytes: sc.PairBytes, Regime: sc.Regime,
	}
	fail := func(format string, args ...interface{}) Outcome {
		out.Err = fmt.Sprintf(format, args...)
		return out
	}

	// 1. Transform (parse → analyze → rewrite → unparse).
	transformed, rep, err := core.Transform(sc.Source, core.Options{K: sc.K})
	if err != nil {
		return fail("transform: %v", err)
	}
	out.TransformedSites = rep.TransformedCount()
	out.Interchanged = rep.AnyInterchanged()
	if out.TransformedSites == 0 {
		return fail("transform did not fire: %s", rep.FirstRejection())
	}

	// 2–5. Run both variants under every profile; assert identical results.
	out.Identical = true
	for _, prof := range profiles {
		var results [2]*interp.Result
		var times [2]netsim.Time
		var blocked [2]netsim.Time
		var msgs, bytes [2]int64
		for vi, text := range []string{sc.Source, transformed} {
			prog, err := interp.Load(text)
			if err != nil {
				return fail("load %s variant %d: %v", prof.Name, vi, err)
			}
			if sc.Costs != nil {
				prog.Costs = *sc.Costs
			}
			res, err := prog.Run(sc.NP, prof)
			if err != nil {
				return fail("run %s variant %d: %v", prof.Name, vi, err)
			}
			results[vi] = res
			times[vi] = res.Elapsed()
			_, b := res.AvgRankTimes()
			blocked[vi] = b
			msgs[vi] = res.Stats.Messages
			bytes[vi] = res.Stats.Bytes
		}
		pr := ProfileRun{
			Profile: prof.Name, Offload: prof.Offload,
			OriginalNs: int64(times[0]), PrepushNs: int64(times[1]),
			OriginalBlockedNs: int64(blocked[0]), PrepushBlockedNs: int64(blocked[1]),
			OriginalMessages: msgs[0], PrepushMessages: msgs[1],
			OriginalBytes: bytes[0], PrepushBytes: bytes[1],
		}
		if times[1] > 0 {
			pr.Speedup = float64(times[0]) / float64(times[1])
		}
		out.Profiles = append(out.Profiles, pr)
		if same, why := interp.SameObservable(results[0], results[1], arrays...); !same {
			out.Identical = false
			if out.Mismatch == "" {
				out.Mismatch = fmt.Sprintf("%s: %s", prof.Name, why)
			}
		}
	}
	return out
}

// summarize folds outcomes into the aggregate verdicts.
func summarize(outcomes []Outcome) Summary {
	s := Summary{Scenarios: len(outcomes), GeomeanSpeedup: map[string]float64{}}
	logSum := map[string]float64{}
	cnt := map[string]int{}
	for _, o := range outcomes {
		if o.Err != "" {
			s.Errors++
			continue
		}
		if !o.Identical {
			// A scenario that failed the oracle contributes nothing to the
			// performance aggregates: a transformation that corrupts
			// results must not inflate the reported overlap gain.
			continue
		}
		s.Correct++
		gained := false
		for _, pr := range o.Profiles {
			if pr.Speedup > 0 {
				logSum[pr.Profile] += math.Log(pr.Speedup)
				cnt[pr.Profile]++
			}
			if pr.Offload && pr.Speedup >= 1.0 {
				gained = true
			}
		}
		if gained {
			s.OffloadGained++
		}
	}
	for name, ls := range logSum {
		s.GeomeanSpeedup[name] = math.Exp(ls / float64(cnt[name]))
	}
	return s
}

// WriteJSON writes the report artifact (pretty-printed, trailing newline).
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Table renders the per-scenario results as an aligned text table, profiles
// sorted as configured, scenarios in corpus order.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %-10s %6s %5s  %-10s %12s %12s %8s  %s\n",
		"scenario", "regime", "np", "K", "profile", "original", "prepush", "speedup", "oracle")
	for _, o := range r.Scenarios {
		if o.Err != "" {
			fmt.Fprintf(&sb, "%-34s %-10s %6d %5d  ERROR: %s\n", o.Name, o.Regime, o.NP, o.K, o.Err)
			continue
		}
		verdict := "identical"
		if !o.Identical {
			verdict = "MISMATCH: " + o.Mismatch
		}
		for i, pr := range o.Profiles {
			name, regime := o.Name, o.Regime
			v := verdict
			if i > 0 {
				name, regime, v = "", "", ""
			}
			fmt.Fprintf(&sb, "%-34s %-10s %6d %5d  %-10s %12s %12s %8.2f  %s\n",
				name, regime, o.NP, o.K, pr.Profile,
				netsim.Time(pr.OriginalNs), netsim.Time(pr.PrepushNs), pr.Speedup, v)
		}
	}
	var profs []string
	for p := range r.Summary.GeomeanSpeedup {
		profs = append(profs, p)
	}
	sort.Strings(profs)
	fmt.Fprintf(&sb, "\n%d scenarios, %d identical, %d errors\n",
		r.Summary.Scenarios, r.Summary.Correct, r.Summary.Errors)
	for _, p := range profs {
		fmt.Fprintf(&sb, "geomean speedup %-10s %.3f\n", p, r.Summary.GeomeanSpeedup[p])
	}
	return sb.String()
}
