package harness

import (
	"fmt"
	"sort"
	"strings"
)

// CompareBaseline checks the current sweep's per-profile geometric-mean
// speedups against a committed baseline artifact and returns one message
// per regression (empty means the gate passes). The comparison is taken
// over the intersection of the two corpora — outcomes matched by corpus
// index and name — so a truncated or sharded CI sweep gates against the
// committed full-corpus artifact, and corpus growth does not break older
// baselines. Both the fixed and (when both sides tuned) the tuned geomeans
// must stay within rel tolerance tol of the baseline; improvements never
// fail. A tuned sweep whose profile has tuned numbers in the baseline but
// none in the sweep is reported as lost tuned coverage, not a pass.
func CompareBaseline(cur, base *Report, tol float64) []string {
	type key struct {
		index int
		name  string
	}
	curSet := map[key]bool{}
	for _, o := range cur.Scenarios {
		curSet[key{o.Index, o.Name}] = true
	}
	var curSub, baseSub []Outcome
	baseSet := map[key]bool{}
	for _, o := range base.Scenarios {
		if curSet[key{o.Index, o.Name}] {
			baseSub = append(baseSub, o)
			baseSet[key{o.Index, o.Name}] = true
		}
	}
	for _, o := range cur.Scenarios {
		if baseSet[key{o.Index, o.Name}] {
			curSub = append(curSub, o)
		}
	}
	if len(curSub) == 0 {
		return []string{"baseline: no overlapping scenarios between the sweep and the baseline (corpus or seed mismatch?)"}
	}
	curSum := summarize(curSub)
	baseSum := summarize(baseSub)
	// Tuned geomeans are compared only when the sweep itself ran in tuned
	// mode: a fixed-only sweep gating against a tuned baseline is a
	// legitimate ablation, not lost coverage.
	curTuned := false
	for _, o := range curSub {
		if len(o.Tuned) > 0 {
			curTuned = true
			break
		}
	}

	baseFor := map[string]ProfileSummary{}
	for _, ps := range baseSum.PerProfile {
		baseFor[ps.Profile] = ps
	}
	var violations []string
	// A baseline profile entirely absent from the sweep must fail, not
	// pass vacuously — dropping the offload machine from the CI sweep
	// would otherwise disable the headline comparison silently.
	curProfiles := map[string]bool{}
	for _, ps := range curSum.PerProfile {
		curProfiles[ps.Profile] = true
	}
	for _, bs := range baseSum.PerProfile {
		if !curProfiles[bs.Profile] {
			violations = append(violations, fmt.Sprintf(
				"baseline: profile %s is in the baseline but absent from the sweep — machine set changed?", bs.Profile))
		}
	}
	for _, ps := range curSum.PerProfile {
		bs, ok := baseFor[ps.Profile]
		if !ok {
			continue // machine newly added to the sweep: nothing to gate against
		}
		if bs.Geomean > 0 && ps.Geomean < bs.Geomean*(1-tol) {
			violations = append(violations, fmt.Sprintf(
				"baseline: %s fixed geomean %.4f below baseline %.4f (tolerance %.1f%%, %d shared scenarios)",
				ps.Profile, ps.Geomean, bs.Geomean, tol*100, len(curSub)))
		}
		if bs.TunedGeomean > 0 && curTuned {
			switch {
			case ps.TunedGeomean == 0:
				// The baseline has tuned numbers for this profile but the
				// sweep produced none — a silent pass here would let a
				// change that breaks tuning (or drops tuned rows) ship as
				// "no regression".
				violations = append(violations, fmt.Sprintf(
					"baseline: %s tuned coverage lost — baseline has tuned geomean %.4f but the sweep produced no tuned measurements for this profile",
					ps.Profile, bs.TunedGeomean))
			case ps.TunedGeomean < bs.TunedGeomean*(1-tol):
				violations = append(violations, fmt.Sprintf(
					"baseline: %s tuned geomean %.4f below baseline %.4f (tolerance %.1f%%, %d shared scenarios)",
					ps.Profile, ps.TunedGeomean, bs.TunedGeomean, tol*100, len(curSub)))
			}
		}
	}
	sort.Strings(violations)
	return violations
}

// MarkdownSummary renders the sweep's aggregate row as a GitHub-flavoured
// markdown fragment, suitable for $GITHUB_STEP_SUMMARY: a per-profile
// geomean table plus the headline counters.
func (r *Report) MarkdownSummary(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s\n\n", title)
	fmt.Fprintf(&sb, "%d scenarios, %d identical, %d errors",
		r.Summary.Scenarios, r.Summary.Correct, r.Summary.Errors)
	if r.Summary.NonDefaultPlans > 0 {
		fmt.Fprintf(&sb, ", %d non-default plan(s)", r.Summary.NonDefaultPlans)
	}
	if r.Summary.DivergentPlans > 0 {
		fmt.Fprintf(&sb, ", %d divergent plan(s)", r.Summary.DivergentPlans)
	}
	if r.Summary.SkippedSites > 0 {
		fmt.Fprintf(&sb, ", %d skipped site(s), %d identity plan(s)",
			r.Summary.SkippedSites, r.Summary.IdentityPlans)
	}
	sb.WriteString("\n\n")
	tuned := false
	for _, ps := range r.Summary.PerProfile {
		if ps.TunedGeomean > 0 {
			tuned = true
		}
	}
	if tuned {
		sb.WriteString("| machine | offload | geomean speedup | tuned geomean |\n|---|---|---:|---:|\n")
	} else {
		sb.WriteString("| machine | offload | geomean speedup |\n|---|---|---:|\n")
	}
	for _, ps := range r.Summary.PerProfile {
		offload := "no"
		if ps.Offload {
			offload = "yes"
		}
		if tuned {
			tg := "-"
			if ps.TunedGeomean > 0 {
				tg = fmt.Sprintf("%.4f", ps.TunedGeomean)
			}
			fmt.Fprintf(&sb, "| %s | %s | %.4f | %s |\n", ps.Profile, offload, ps.Geomean, tg)
		} else {
			fmt.Fprintf(&sb, "| %s | %s | %.4f |\n", ps.Profile, offload, ps.Geomean)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}
