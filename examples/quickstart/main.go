// Quickstart: transform the paper's Fig. 2(a) program with the
// Compuniformer, run the original and the pre-push version on the simulated
// cluster under both network stacks, and verify they produce identical
// output.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
)

// source is the paper's Fig. 2(a) structure — a computation loop nest that
// finalizes As, followed by MPI_ALLTOALL, inside an outer iteration loop —
// with a 2-D As so columns are big enough for the exchange to be
// bandwidth-bound (the regime the paper measures).
const source = `
program quickstart
  implicit none
  include 'mpif.h'
  integer, parameter :: m = 768
  integer, parameter :: ncols = 128
  integer, parameter :: np = 4
  integer as(1:m, 1:ncols)
  integer ar(1:m, 1:ncols)
  integer im, iy, rep, ierr, checksum

  call mpi_init(ierr)
  checksum = 0
  do rep = 1, 2
    do iy = 1, ncols
      do im = 1, m
        as(im, iy) = mod(im*3 + iy*7 + rep, 1000) + mod(im + iy, 13)*(im - iy)
      enddo
    enddo
    call mpi_alltoall(as, m*ncols/np, mpi_integer, ar, m*ncols/np, mpi_integer, mpi_comm_world, ierr)
    checksum = checksum + ar(1, 1) + ar(m, ncols) + ar(m/2, ncols/2)
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program quickstart
`

func main() {
	// 1. Transform: tile the column loop by K=8, so each tile finalizes 8
	//    columns (a 24 KiB block owned by one rank) and pre-pushes them
	//    with an asynchronous send while the next tile computes.
	transformed, report, err := core.Transform(source, core.Options{K: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Compuniformer report ===")
	fmt.Print(report)
	fmt.Println()
	fmt.Println("=== Transformed source (loop nest only) ===")
	printLoopNest(transformed)

	// 2. Run both versions on 4 simulated ranks under both stacks.
	fmt.Println("=== Simulated execution ===")
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		orig := run(source, prof)
		pre := run(transformed, prof)
		same, why := interp.SameObservable(orig, pre, "ar")
		status := "outputs identical"
		if !same {
			status = "MISMATCH: " + why
		}
		fmt.Printf("%-10s original %-12s prepush %-12s  %s\n",
			prof.Name, orig.Elapsed(), pre.Elapsed(), status)
	}
}

func run(src string, prof netsim.Profile) *interp.Result {
	prog, err := interp.Load(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(4, prof)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// printLoopNest shows the interesting part of the transformed program: the
// outer loop with the inserted tile exchange.
func printLoopNest(src string) {
	lines := strings.Split(src, "\n")
	start, end := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "do iy") {
			start = i
		}
		if start >= 0 && strings.Contains(l, "drain the last tile") {
			end = i + 4
			break
		}
	}
	if start < 0 || end < 0 || end > len(lines) {
		fmt.Println(src)
		return
	}
	for _, l := range lines[start:end] {
		fmt.Println(l)
	}
}
