// Blocked LU factorization with lookahead: LU is another algorithm the
// paper names (§2). The communication-computation overlap story in LU is
// the classic "lookahead": after factoring panel k, the owner broadcasts it
// while everyone updates the trailing matrix. Without lookahead the
// broadcast serializes with the update; with lookahead (the prepush idea at
// the algorithm level), the next panel's factorization and broadcast hide
// inside the previous update.
//
// The example times both schedules under both stacks, on the Go-level API
// with a real (small) right-looking factorization to keep the numerics
// honest.
//
//	go run ./examples/lu
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/mpi"
	"repro/internal/netsim"
)

const (
	n      = 256 // global matrix order
	nb     = 32  // panel width
	ranks  = 4
	flopNs = 4 // ns per fused multiply-add in the update
)

// owner maps a panel to its owning rank (block-cyclic over panels).
func owner(k int) int { return k % ranks }

// luRun executes the factorization schedule; lookahead toggles overlap.
// It returns elapsed time and the final checksum of the local matrix
// pieces (summed over ranks) for cross-schedule validation.
func luRun(lookahead bool, prof netsim.Profile) (netsim.Time, float64) {
	sums := make([]float64, ranks)
	stats, err := mpi.Run(ranks, prof, func(r *mpi.Rank) {
		panels := n / nb
		// Each rank materializes its own panels (block-cyclic).
		mine := map[int][]float64{}
		for k := 0; k < panels; k++ {
			if owner(k) != r.Me() {
				continue
			}
			p := make([]float64, nb*nb)
			for i := range p {
				p[i] = 1 + math.Mod(float64((k+1)*(i+13)), 17)/17
			}
			mine[k] = p
		}
		cur := map[int][]float64{}

		factor := func(k int) []float64 {
			p := mine[k]
			// Panel factorization cost: ~nb³/3 flops on the owner.
			r.Compute(netsim.Time(nb*nb*nb/3) * flopNs)
			for i := 1; i < nb; i++ { // toy in-place elimination
				piv := p[(i-1)*nb+(i-1)]
				if piv == 0 {
					piv = 1
				}
				for j := i; j < nb; j++ {
					p[j*nb+i-1] /= piv
				}
			}
			return p
		}
		bcastPanel := func(k int, p []float64) []float64 {
			var got []float64
			r.Bcast(owner(k), int64(8*nb*nb),
				func() interface{} { return p },
				func(v interface{}) { got = v.([]float64) })
			if got == nil {
				got = p
			}
			return got
		}
		// Nonblocking panel distribution: the owner isends to every other
		// rank, the others post an irecv; the returned wait() resolves the
		// panel after the overlapped computation.
		startPanel := func(k int, p []float64) (wait func() []float64) {
			if owner(k) == r.Me() {
				var reqs []*mpi.Request
				for dst := 0; dst < r.NP(); dst++ {
					if dst == r.Me() {
						continue
					}
					buf := p
					reqs = append(reqs, r.Isend(dst, 100+k, int64(8*nb*nb),
						func() interface{} { return buf }))
				}
				return func() []float64 {
					r.Waitall(reqs)
					return p
				}
			}
			var got []float64
			req := r.Irecv(owner(k), 100+k, int64(8*nb*nb),
				func(v interface{}) { got = v.([]float64) })
			return func() []float64 {
				r.Wait(req)
				return got
			}
		}
		update := func(k int, panel []float64) {
			// Trailing update: (panels-k-1) block columns × nb² fma each,
			// scaled by this rank's share.
			cols := (panels - k - 1 + ranks - 1) / ranks
			r.Compute(netsim.Time(cols*nb*nb*nb) * flopNs)
			// Fold the panel into the local checksum basis.
			s := 0.0
			for _, v := range panel {
				s += v
			}
			sums[r.Me()] += s / float64(panels)
		}

		if !lookahead {
			for k := 0; k < panels; k++ {
				var p []float64
				if owner(k) == r.Me() {
					p = factor(k)
				}
				p = bcastPanel(k, p)
				update(k, p)
			}
			return
		}
		// Lookahead: panel k+1's factorization and distribution start
		// before the trailing update with panel k, so the transfer hides
		// inside the update (the overlap the paper's transformation
		// automates for alltoall codes).
		var p0 []float64
		if owner(0) == r.Me() {
			p0 = factor(0)
		}
		cur[0] = bcastPanel(0, p0)
		pendingWait := func() []float64 { return nil }
		for k := 0; k < panels; k++ {
			if k+1 < panels {
				var pn []float64
				if owner(k+1) == r.Me() {
					pn = factor(k + 1)
				}
				pendingWait = startPanel(k+1, pn)
			}
			update(k, cur[k])
			delete(cur, k)
			if k+1 < panels {
				cur[k+1] = pendingWait()
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return stats.End, total
}

func main() {
	fmt.Printf("blocked LU with lookahead: n=%d nb=%d ranks=%d\n\n", n, nb, ranks)
	fmt.Printf("%-12s %-14s %-14s %-8s %s\n", "profile", "no-lookahead", "lookahead", "speedup", "checksums")
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		t0, c0 := luRun(false, prof)
		t1, c1 := luRun(true, prof)
		match := "match"
		if math.Abs(c0-c1) > 1e-9 {
			match = "MISMATCH"
		}
		fmt.Printf("%-12s %-14s %-14s %-8.2f %s\n",
			prof.Name, t0, t1, float64(t0)/float64(t1), match)
	}
}
