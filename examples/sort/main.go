// Parallel sample sort: sorting is one of the algorithms the paper names
// as fitting its abstract form (§2) — local work produces partitions that
// an all-to-all exchange redistributes. This example runs a full sample
// sort on the Go-level API: local sort, splitter agreement, bucket
// partition, AlltoallvInt64 exchange, final merge — and verifies global
// sortedness across rank boundaries.
//
//	go run ./examples/sort
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/mpi"
	"repro/internal/netsim"
)

const (
	perRank = 1 << 14
	ranks   = 8
)

// pseudo returns a deterministic pseudo-random key stream per rank.
func pseudo(rank, i int) int64 {
	x := int64(rank*1_000_003 + i*7919 + 12345)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	if x < 0 {
		x = -x
	}
	return x % 1_000_000
}

func main() {
	fmt.Printf("sample sort: %d ranks × %d keys\n\n", ranks, perRank)
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		globalMax := make([]int64, ranks)
		globalMin := make([]int64, ranks)
		counts := make([]int, ranks)
		stats, err := mpi.Run(ranks, prof, func(r *mpi.Rank) {
			// 1. Local keys + local sort (charged as n·log n compute).
			keys := make([]int64, perRank)
			for i := range keys {
				keys[i] = pseudo(r.Me(), i)
			}
			r.Compute(netsim.Time(perRank*14) * 12 * netsim.Nanosecond)
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

			// 2. Regular sampling: each rank contributes NP-1 splitters.
			local := make([]int64, r.NP()-1)
			for i := range local {
				local[i] = keys[(i+1)*perRank/r.NP()]
			}
			all := r.AllgatherInt64s(local)
			var cand []int64
			for _, xs := range all {
				cand = append(cand, xs...)
			}
			sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
			splitters := make([]int64, r.NP()-1)
			for i := range splitters {
				splitters[i] = cand[(i+1)*len(cand)/r.NP()]
			}

			// 3. Partition into buckets.
			parts := make([][]int64, r.NP())
			b := 0
			for _, k := range keys {
				for b < r.NP()-1 && k >= splitters[b] {
					b++
				}
				parts[b] = append(parts[b], k)
			}

			// 4. Exchange buckets (the alltoall of the paper's form).
			got := r.AlltoallvInt64(parts)

			// 5. Merge.
			var mine []int64
			for _, g := range got {
				mine = append(mine, g...)
			}
			r.Compute(netsim.Time(len(mine)*14) * 12 * netsim.Nanosecond)
			sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })

			counts[r.Me()] = len(mine)
			if len(mine) > 0 {
				globalMin[r.Me()] = mine[0]
				globalMax[r.Me()] = mine[len(mine)-1]
			}
		})
		if err != nil {
			log.Fatal(err)
		}

		// Verify global order across rank boundaries and conservation.
		total := 0
		for _, c := range counts {
			total += c
		}
		ok := total == ranks*perRank
		for i := 1; i < ranks; i++ {
			if counts[i] > 0 && counts[i-1] > 0 && globalMin[i] < globalMax[i-1] {
				ok = false
			}
		}
		status := "globally sorted"
		if !ok {
			status = "ORDER VIOLATION"
		}
		fmt.Printf("%-12s elapsed %-14s messages %-6d  %s (%d keys)\n",
			prof.Name, stats.End, stats.Messages, status, total)
	}
}
