// FFT transpose: multi-dimensional FFTs are one of the paper's motivating
// applications (§2). The distributed algorithm computes 1-D transforms
// along the local dimension, then performs an all-to-all transpose, then
// transforms along the other dimension. The transpose is exactly the
// compute-then-ALLTOALL structure the Compuniformer targets: each column
// group is finalized by the butterfly loop before the exchange.
//
// This example expresses the butterfly + transpose step in the Fortran
// subset (with an integer butterfly standing in for the complex one so
// results compare exactly), transforms it, and measures both versions.
//
//	go run ./examples/fft
package main

import (
	"fmt"
	"log"

	"repro/internal/workload"
)

// fftSource builds the kernel: rows = local chunk of the 2-D signal,
// sz = the partitioned dimension exchanged in the transpose.
const fftSource = `
program ffttranspose
  implicit none
  include 'mpif.h'
  integer, parameter :: m = 128
  integer, parameter :: rows = 32
  integer, parameter :: sz = 16
  integer, parameter :: np = 4
  integer as(1:m, 1:rows, 1:sz)
  integer ar(1:m, 1:rows, 1:sz)
  integer im, ir, is, ierr, me, checksum
  integer w, u, t

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)

  ! stage 1: local butterflies along m for every (row, plane);
  ! an integer butterfly (u + w*t style) keeps results exactly comparable
  do ir = 1, rows
    do is = 1, sz
      do im = 1, m
        w = mod(im*ir + is, 97)
        u = mod(im + ir*is + me, 89)
        t = w*u - mod(im + is, 7)*(w + u)
        as(im, ir, is) = t + mod(t, 13)
      enddo
    enddo
  enddo

  ! stage 2: global transpose (the alltoall the paper's §2 describes)
  call mpi_alltoall(as, m*rows*sz/np, mpi_integer, ar, m*rows*sz/np, mpi_integer, mpi_comm_world, ierr)

  ! stage 3: local butterflies along the received dimension
  checksum = 0
  do is = 1, sz
    do im = 1, m
      checksum = checksum + ar(im, 1, is)*im - ar(im, rows/2, is)
    enddo
  enddo
  print *, 'fft checksum', checksum
  call mpi_finalize(ierr)
end program ffttranspose
`

func main() {
	fmt.Println("FFT transpose workload (paper §2 motivating application)")
	fmt.Println()
	cmp, err := workload.Compare("fft-transpose", fftSource, workload.RunOptions{
		NP: 4, K: 16, CheckEquivalence: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cmp)

	// Show how overlap shifts the breakdown on the offload stack.
	fmt.Println("per-rank time breakdown on mpich-gm:")
	for _, m := range cmp.Measurements {
		if m.Profile != "mpich-gm" {
			continue
		}
		fmt.Printf("  %-10s compute %-12s blocked-in-MPI %-12s\n", m.Variant, m.Compute, m.Blocked)
	}
}
