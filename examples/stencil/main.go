// Stencil / finite differences: another of the paper's motivating
// application classes (§2). This example uses the Go-level API directly —
// the mpi runtime over the simulated cluster — to contrast three schedules
// of a 1-D heat-equation sweep with halo exchange:
//
//  1. blocking: compute everything, then exchange halos (overlap-naïve);
//
//  2. prepush: compute boundary cells first, start their sends
//     asynchronously, compute the interior while data flies (the manual
//     version of the paper's transformation);
//
//  3. the same two schedules under both network stacks, showing that the
//     gain needs NIC offload.
//
//     go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"repro/internal/mpi"
	"repro/internal/netsim"
)

const (
	cells    = 1 << 15 // local cells per rank
	steps    = 20
	ranks    = 4
	cellCost = 25 * netsim.Nanosecond // per-cell update cost
	haloSize = 4096                   // halo cells exchanged per side
)

// sweep runs the stencil for one schedule and returns elapsed virtual time.
func sweep(prepush bool, prof netsim.Profile) netsim.Time {
	stats, err := mpi.Run(ranks, prof, func(r *mpi.Rank) {
		left := (r.Me() + r.NP() - 1) % r.NP()
		right := (r.Me() + 1) % r.NP()
		halo := make([]int64, haloSize)
		for i := range halo {
			halo[i] = int64(r.Me()*1000 + i)
		}
		bytes := int64(8 * haloSize)

		for s := 0; s < steps; s++ {
			if prepush {
				// Boundary cells first…
				r.Compute(netsim.Time(2*haloSize) * cellCost)
				// …their halos go out immediately…
				reqs := []*mpi.Request{
					r.Irecv(left, s, bytes, func(interface{}) {}),
					r.Irecv(right, s, bytes, func(interface{}) {}),
					r.Isend(left, s, bytes, func() interface{} { return halo }),
					r.Isend(right, s, bytes, func() interface{} { return halo }),
				}
				// …and the interior overlaps with the transfer.
				r.Compute(netsim.Time(cells-2*haloSize) * cellCost)
				r.Waitall(reqs)
			} else {
				// Overlap-naïve: all computation, then all communication.
				r.Compute(netsim.Time(cells) * cellCost)
				reqs := []*mpi.Request{
					r.Irecv(left, s, bytes, func(interface{}) {}),
					r.Irecv(right, s, bytes, func(interface{}) {}),
					r.Isend(left, s, bytes, func() interface{} { return halo }),
					r.Isend(right, s, bytes, func() interface{} { return halo }),
				}
				r.Waitall(reqs)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return stats.End
}

func main() {
	fmt.Println("1-D heat equation with halo exchange (finite differences, paper §2)")
	fmt.Printf("ranks=%d cells/rank=%d steps=%d halo=%d cells\n\n", ranks, cells, steps, haloSize)
	fmt.Printf("%-12s %-14s %-14s %s\n", "profile", "blocking", "prepush", "speedup")
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		blocking := sweep(false, prof)
		prepush := sweep(true, prof)
		fmt.Printf("%-12s %-14s %-14s %.2fx\n",
			prof.Name, blocking, prepush, float64(blocking)/float64(prepush))
	}
	fmt.Println("\nThe offload stack converts nearly the whole exchange into overlap;")
	fmt.Println("the host-progress stack cannot, which is the paper's Figure 1 story.")
}
